/**
 * @file
 * Parameterised property sweeps across module configuration spaces:
 * cache geometries, branch-history depths, PDN impedance/frequency
 * grids and closed-loop safety of solved thresholds. These pin down
 * invariants rather than point behaviours.
 */

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "core/experiments.hpp"
#include "core/multicore_sim.hpp"
#include "core/threshold_solver.hpp"
#include "cpu/branch_pred.hpp"
#include "cpu/cache.hpp"
#include "linsys/worst_case.hpp"
#include "pdn/impulse.hpp"
#include "pdn/package_model.hpp"
#include "pdn/pdn_backend.hpp"
#include "pdn/pdn_sim.hpp"
#include "util/rng.hpp"

namespace {

using namespace vguard;
using namespace vguard::cpu;

// --------------------------------------------------- cache properties

class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t,
                                                 uint32_t>>
{
};

TEST_P(CacheGeometry, InclusionOfRecentLines)
{
    // Property: the most recently touched `ways` distinct lines of any
    // set always hit.
    const auto [size, ways, line] = GetParam();
    Cache c("t", CacheConfig{size, ways, line, 1});
    const uint32_t sets = size / (ways * line);

    Rng rng(size ^ ways);
    for (int trial = 0; trial < 200; ++trial) {
        const uint32_t set = static_cast<uint32_t>(rng.below(sets));
        // Touch `ways` distinct tags within one set, then re-touch:
        // all must hit.
        for (uint32_t w = 0; w < ways; ++w) {
            const uint64_t addr =
                (static_cast<uint64_t>(w + 1 + trial) * sets + set) *
                line;
            c.access(addr, false);
        }
        for (uint32_t w = 0; w < ways; ++w) {
            const uint64_t addr =
                (static_cast<uint64_t>(w + 1 + trial) * sets + set) *
                line;
            EXPECT_TRUE(c.access(addr, false).hit)
                << "way " << w << " trial " << trial;
        }
    }
}

TEST_P(CacheGeometry, MissCountBoundedByCompulsory)
{
    // Property: touching N distinct lines once then re-touching them
    // all (working set <= capacity) incurs exactly N misses.
    const auto [size, ways, line] = GetParam();
    Cache c("t", CacheConfig{size, ways, line, 1});
    const uint32_t lines = size / line;
    for (uint32_t i = 0; i < lines; ++i)
        c.access(static_cast<uint64_t>(i) * line, false);
    EXPECT_EQ(c.stats().misses, lines);
    for (uint32_t i = 0; i < lines; ++i)
        c.access(static_cast<uint64_t>(i) * line, false);
    EXPECT_EQ(c.stats().misses, lines); // fully resident
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::make_tuple(1024u, 1u, 64u),
                      std::make_tuple(2048u, 2u, 64u),
                      std::make_tuple(4096u, 4u, 32u),
                      std::make_tuple(8192u, 2u, 128u),
                      std::make_tuple(65536u, 2u, 64u)));

// ------------------------------------------------ predictor properties

class HistoryDepth : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(HistoryDepth, LearnsShortPeriodicPatterns)
{
    // Property: any strictly periodic direction pattern with period <=
    // history depth is eventually predicted near-perfectly by the
    // combined predictor.
    CpuConfig cfg;
    cfg.historyBits = GetParam();
    BranchPredictor bp(cfg);
    isa::StaticInst si{isa::Opcode::BNE, isa::kNoReg, isa::intReg(1),
                       isa::kNoReg, 0, 3};

    const unsigned period = std::min(GetParam(), 6u);
    auto pattern = [&](unsigned t) { return (t % period) == 0; };

    for (unsigned t = 0; t < 6000; ++t)
        bp.predictAndUpdate(99, si, pattern(t), 3);
    const uint64_t before = bp.stats().condMispredicts;
    for (unsigned t = 6000; t < 7000; ++t)
        bp.predictAndUpdate(99, si, pattern(t), 3);
    EXPECT_LT(bp.stats().condMispredicts - before, 30u)
        << "period " << period;
}

INSTANTIATE_TEST_SUITE_P(Depths, HistoryDepth,
                         ::testing::Values(4u, 8u, 12u, 15u));

// ----------------------------------------------------- PDN properties

class PdnGrid
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(PdnGrid, PassivityAndWorstCaseDominance)
{
    const auto [f0Mhz, zScale] = GetParam();
    const auto m = pdn::PackageModel::design(f0Mhz * 1e6,
                                             zScale * 1e-3);

    // DC resistance preserved, discrete model stable.
    EXPECT_NEAR(m.impedanceMag(0.0), 0.5e-3, 1e-9);
    EXPECT_LT(m.discrete().spectralRadiusEstimate(), 1.0);

    // Worst-case dominance: random admissible inputs never exceed the
    // bang-bang bound.
    const auto h = pdn::impulseResponse(m);
    const auto wc = linsys::bangBangWorstCase(h, 10.0, 40.0);
    pdn::PdnSim sim(m);
    sim.trimToCurrent(10.0);
    const double vdd = sim.vddSetPoint();
    Rng rng(static_cast<uint64_t>(f0Mhz * 1000 + zScale));
    double vMin = 2.0, vMax = 0.0;
    for (int t = 0; t < 20000; ++t) {
        const double amps =
            rng.chance(0.5) ? 10.0 : (rng.chance(0.5) ? 40.0 : 25.0);
        const double v = sim.step(amps);
        vMin = std::min(vMin, v);
        vMax = std::max(vMax, v);
    }
    // Bound accounting: sim trims so Vdd = vNom + rDc*10; the bound is
    // relative to the same reference.
    EXPECT_GE(vMin, vdd + wc.minOutput - 1e-9);
    EXPECT_LE(vMax, vdd + wc.maxOutput + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PdnGrid,
    ::testing::Combine(::testing::Values(25.0, 50.0, 100.0),
                       ::testing::Values(1.5, 3.0, 6.0)));

// ------------------------------------------ threshold solver property

class SolverGrid
    : public ::testing::TestWithParam<std::tuple<unsigned, double>>
{
};

TEST_P(SolverGrid, SolvedThresholdsAlwaysSafeInClosedLoop)
{
    // The headline guarantee, swept over (delay, impedance) pairs:
    // whatever the solver returns as feasible must survive its own
    // adversarial closed-loop verification with margin intact.
    const auto [delay, zScale] = GetParam();
    const auto &range = core::referenceCurrentRange();
    core::ThresholdSpec spec;
    spec.zPeakOhms = core::referenceTarget().zTargetOhms * zScale;
    spec.iMin = range.progMin;
    spec.iMax = range.progMax;
    spec.iGate = range.gatedMin;
    spec.iPhantom = range.phantomMax;
    spec.iTrim = range.gatedMin;
    spec.delayCycles = delay;
    const auto th = core::solveThresholds(spec);
    if (!th.feasibleLow || !th.feasibleHigh)
        GTEST_SKIP() << "infeasible configuration (expected at "
                        "aggressive corners)";
    double vMin, vMax;
    core::closedLoopExtremes(spec, th.vLow, th.vHigh, vMin, vMax);
    EXPECT_GE(vMin, 0.95 - 1e-9);
    EXPECT_LE(vMax, 1.05 + 1e-9);
    EXPECT_GT(th.safeWindowV(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SolverGrid,
    ::testing::Combine(::testing::Values(0u, 2u, 4u, 6u),
                       ::testing::Values(1.5, 2.0, 3.0)));

// --------------------------------------- batched-backend properties

/**
 * Randomized invariants of the lane-batched PDN backend over seeded
 * package/trim draws (see tests/test_backend_diff.cpp for the
 * preset-grid differential suite). Each seed draws a lane count
 * K ∈ [1, 8], K random packages and a random trace, then asserts the
 * structural properties that make batching safe to use anywhere:
 * per-lane independence, order independence, and padding isolation.
 */
class BatchedBackend : public ::testing::TestWithParam<uint64_t>
{
  protected:
    struct Draw
    {
        std::vector<pdn::LaneConfig> lanes;
        std::vector<double> amps;
    };

    static Draw
    draw(uint64_t seed)
    {
        Rng rng(seed);
        Draw d;
        const size_t k = 1 + rng.below(8);
        for (size_t i = 0; i < k; ++i) {
            const double f0 = rng.uniform(30e6, 150e6);
            const double zPeak = rng.uniform(0.8e-3, 4e-3);
            d.lanes.push_back(
                {pdn::PackageModel::design(f0, zPeak).params(),
                 rng.uniform(0.0, 30.0)});
        }
        d.amps.resize(500 + rng.below(3000));
        for (double &a : d.amps)
            a = rng.uniform(0.0, 50.0);
        return d;
    }

    static std::vector<double>
    runBatch(const std::vector<pdn::LaneConfig> &lanes,
             const std::vector<double> &amps)
    {
        const auto backend = pdn::makeBatchedBackend(lanes);
        std::vector<double> volts(amps.size() * lanes.size());
        backend->stepShared(amps.data(), amps.size(), volts.data());
        return volts;
    }
};

TEST_P(BatchedBackend, IdenticalLanesEqualScalarRuns)
{
    // Property: a batch of K copies of one scenario behaves exactly
    // like K independent scalar runs of it — lanes never interact.
    const Draw d = draw(GetParam());
    const std::vector<pdn::LaneConfig> copies(d.lanes.size(),
                                              d.lanes[0]);
    const auto volts = runBatch(copies, d.amps);

    pdn::PdnSim sim(pdn::PackageModel(d.lanes[0].package));
    sim.trimToCurrent(d.lanes[0].iTrim);
    std::vector<double> ref(d.amps.size());
    sim.stepMany(d.amps.data(), d.amps.size(), ref.data());

    const size_t k = copies.size();
    for (size_t cyc = 0; cyc < d.amps.size(); ++cyc)
        for (size_t lane = 0; lane < k; ++lane)
            ASSERT_EQ(volts[cyc * k + lane], ref[cyc])
                << "cycle " << cyc << " lane " << lane;
}

TEST_P(BatchedBackend, PermutationInvariance)
{
    // Property: lane order is bookkeeping, not arithmetic — permuting
    // the lane list permutes the output columns and nothing else.
    const Draw d = draw(GetParam());
    const auto base = runBatch(d.lanes, d.amps);

    Rng rng(GetParam() ^ 0x9e3779b97f4a7c15ull);
    std::vector<size_t> perm(d.lanes.size());
    for (size_t i = 0; i < perm.size(); ++i)
        perm[i] = i;
    for (size_t i = perm.size(); i > 1; --i)
        std::swap(perm[i - 1], perm[rng.below(i)]);

    std::vector<pdn::LaneConfig> shuffled;
    for (const size_t p : perm)
        shuffled.push_back(d.lanes[p]);
    const auto got = runBatch(shuffled, d.amps);

    const size_t k = d.lanes.size();
    for (size_t cyc = 0; cyc < d.amps.size(); ++cyc)
        for (size_t lane = 0; lane < k; ++lane)
            ASSERT_EQ(got[cyc * k + lane], base[cyc * k + perm[lane]])
                << "cycle " << cyc << " lane " << lane;
}

TEST_P(BatchedBackend, PaddingInvariance)
{
    // Property: appending lanes (changing how the batch divides into
    // SIMD packs, and which lane pads the tail) never perturbs the
    // lanes already present.
    const Draw d = draw(GetParam());
    const auto base = runBatch(d.lanes, d.amps);

    auto extended = d.lanes;
    extended.push_back(d.lanes[0]);
    extended.push_back(
        {pdn::PackageModel::design(80e6, 2.2e-3).params(), 12.0});
    const auto got = runBatch(extended, d.amps);

    const size_t k = d.lanes.size();
    const size_t ke = extended.size();
    for (size_t cyc = 0; cyc < d.amps.size(); ++cyc)
        for (size_t lane = 0; lane < k; ++lane)
            ASSERT_EQ(got[cyc * ke + lane], base[cyc * k + lane])
                << "cycle " << cyc << " lane " << lane;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchedBackend,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u,
                                           21u, 34u));

// --------------------------------------- multicore chip properties

/**
 * Randomized invariants of the shared-rail chip path over seeded
 * chip draws (see tests/test_multicore.cpp for the structured
 * differential suite). Each seed draws 1–4 chips with random core
 * counts (including 1), random phase offsets, occasional parked
 * cores and an optional governor, then asserts that the batched
 * backend matches scalar exactly and that the run is deterministic.
 */
class MulticoreChip : public ::testing::TestWithParam<uint64_t>
{
  protected:
    struct Draw
    {
        std::vector<core::CapturedTrace> traces;
        std::vector<core::ChipSpec> chips;
        uint64_t cycles = 0;
    };

    static Draw
    draw(uint64_t seed)
    {
        Rng rng(seed);
        Draw d;
        const size_t nChips = 1 + rng.below(4);
        // Traces outlive the specs (ChipSpec stores pointers); one
        // per chip plus a shared zero-length trace for parked cores.
        d.traces.resize(nChips + 1);
        for (size_t c = 0; c < nChips; ++c) {
            core::CapturedTrace &t = d.traces[c];
            t.amps.resize(200 + rng.below(1500));
            for (double &a : t.amps)
                a = rng.uniform(0.0, 50.0);
        }
        for (size_t c = 0; c < nChips; ++c) {
            core::ChipSpec chip;
            const size_t nCores = 1 + rng.below(8);
            const double s = 1.0 / static_cast<double>(nCores);
            chip.package = pdn::PackageModel::design(
                               rng.uniform(30e6, 150e6),
                               rng.uniform(0.8e-3, 4e-3) * s,
                               0.5e-3 * s, 0.25e-3 * s)
                               .params();
            chip.iTrim = rng.uniform(0.0, 10.0) *
                         static_cast<double>(nCores);
            for (size_t i = 0; i < nCores; ++i) {
                core::CoreSlot slot;
                // One in eight cores is parked (zero-length trace).
                slot.trace = rng.below(8) == 0 ? &d.traces[nChips]
                                               : &d.traces[c];
                slot.phaseOffset = rng.below(2000);
                slot.iGate = rng.uniform(0.0, 5.0);
                slot.iPhantom = rng.uniform(40.0, 60.0);
                chip.cores.push_back(slot);
            }
            if (rng.chance(0.5)) {
                core::SensorConfig sc;
                sc.vLow = 0.96;
                sc.vHigh = 1.04;
                sc.delayCycles = 1 + rng.below(4);
                sc.noiseMagnitude = rng.uniform(0.0, 0.01);
                sc.seed = rng.below(1u << 20);
                chip.sensor = sc;
                if (rng.chance(0.5)) {
                    core::ChipGovernorConfig g;
                    g.kp = rng.uniform(0.1, 2.0);
                    g.ki = rng.uniform(0.0, 0.1);
                    chip.governor = g;
                }
            }
            d.chips.push_back(std::move(chip));
        }
        d.cycles = 500 + rng.below(2000);
        return d;
    }
};

TEST_P(MulticoreChip, BatchedMatchesScalarExactly)
{
    const Draw d = draw(GetParam());
    const auto scalar =
        core::runChips(d.chips, d.cycles, pdn::BackendKind::Scalar);
    const auto batched =
        core::runChips(d.chips, d.cycles, pdn::BackendKind::Batched);
    ASSERT_EQ(scalar.size(), batched.size());
    for (size_t c = 0; c < scalar.size(); ++c) {
        ASSERT_EQ(scalar[c].minV, batched[c].minV) << "chip " << c;
        ASSERT_EQ(scalar[c].maxV, batched[c].maxV) << "chip " << c;
        ASSERT_EQ(scalar[c].lowEmergencyCycles,
                  batched[c].lowEmergencyCycles)
            << "chip " << c;
        ASSERT_EQ(scalar[c].highEmergencyCycles,
                  batched[c].highEmergencyCycles)
            << "chip " << c;
        ASSERT_EQ(scalar[c].gateGrants, batched[c].gateGrants)
            << "chip " << c;
        ASSERT_EQ(scalar[c].gateDenials, batched[c].gateDenials)
            << "chip " << c;
        for (size_t b = 0; b < scalar[c].voltageHist.bins(); ++b)
            ASSERT_EQ(scalar[c].voltageHist.count(b),
                      batched[c].voltageHist.count(b))
                << "chip " << c << " bin " << b;
    }
}

TEST_P(MulticoreChip, RunsAreDeterministic)
{
    // Property: the sensor noise streams are seeded, so an identical
    // second run reproduces every counter and extremum exactly.
    const Draw d = draw(GetParam());
    const auto a =
        core::runChips(d.chips, d.cycles, pdn::BackendKind::Batched);
    const auto b =
        core::runChips(d.chips, d.cycles, pdn::BackendKind::Batched);
    for (size_t c = 0; c < a.size(); ++c) {
        ASSERT_EQ(a[c].minV, b[c].minV) << "chip " << c;
        ASSERT_EQ(a[c].maxV, b[c].maxV) << "chip " << c;
        ASSERT_EQ(a[c].lowEmergencyCycles, b[c].lowEmergencyCycles);
        ASSERT_EQ(a[c].highEmergencyCycles, b[c].highEmergencyCycles);
        ASSERT_EQ(a[c].gateGrants, b[c].gateGrants);
        ASSERT_EQ(a[c].gateDenials, b[c].gateDenials);
        ASSERT_EQ(a[c].gateFairness, b[c].gateFairness);
        for (size_t i = 0; i < a[c].cores.size(); ++i) {
            ASSERT_EQ(a[c].cores[i].gatedCycles,
                      b[c].cores[i].gatedCycles);
            ASSERT_EQ(a[c].cores[i].phantomCycles,
                      b[c].cores[i].phantomCycles);
        }
    }
}

TEST_P(MulticoreChip, SplitRunsMatchOneLongRun)
{
    // Property: rail and control state carry across run() calls, so
    // run(a); run(b) accumulates exactly like one run(a + b).
    const Draw d = draw(GetParam());
    core::MulticoreSim whole(d.chips);
    const auto one = whole.run(d.cycles);

    core::MulticoreSim split(d.chips);
    const uint64_t head = d.cycles / 3;
    const auto first = split.run(head);
    const auto second = split.run(d.cycles - head);

    for (size_t c = 0; c < one.size(); ++c) {
        ASSERT_EQ(one[c].cycles,
                  first[c].cycles + second[c].cycles);
        ASSERT_EQ(one[c].minV,
                  std::min(first[c].minV, second[c].minV))
            << "chip " << c;
        ASSERT_EQ(one[c].maxV,
                  std::max(first[c].maxV, second[c].maxV))
            << "chip " << c;
        ASSERT_EQ(one[c].lowEmergencyCycles,
                  first[c].lowEmergencyCycles +
                      second[c].lowEmergencyCycles)
            << "chip " << c;
        ASSERT_EQ(one[c].highEmergencyCycles,
                  first[c].highEmergencyCycles +
                      second[c].highEmergencyCycles)
            << "chip " << c;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MulticoreChip,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u,
                                           21u, 34u));

} // namespace
