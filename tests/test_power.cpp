/**
 * @file
 * Unit tests for the Wattch-style power model: gating/phantom effects,
 * activity scaling, min/max bounds and integration with the core.
 */

#include <gtest/gtest.h>

#include "cpu/core.hpp"
#include "isa/program.hpp"
#include "power/wattch.hpp"

namespace {

using namespace vguard;
using namespace vguard::power;
using cpu::ActivityVector;
using cpu::CpuConfig;

WattchModel
model()
{
    return WattchModel(PowerConfig{}, CpuConfig{});
}

ActivityVector
busyVector(const CpuConfig &cfg)
{
    ActivityVector av;
    av.fetched = cfg.fetchWidth;
    av.bpredLookups = 2;
    av.dispatched = cfg.decodeWidth;
    av.ruuOccupancy = cfg.ruuSize / 2;
    av.lsqOccupancy = cfg.lsqSize / 2;
    av.busyIntAlu = cfg.numIntAlu;
    av.busyFpAlu = cfg.numFpAlu;
    av.memPortsUsed = cfg.numMemPorts;
    av.dcacheAccesses = cfg.numMemPorts;
    av.regReads = 16;
    av.regWrites = 8;
    av.writebacks = cfg.issueWidth;
    av.committed = cfg.commitWidth;
    av.issueActivity = 0.8f;
    return av;
}

TEST(Wattch, IdlePowerIsSmallButNonzero)
{
    auto m = model();
    const double idle = m.power(ActivityVector{});
    EXPECT_GT(idle, 1.0);
    EXPECT_LT(idle, 0.35 * m.maxPower());
}

TEST(Wattch, BusyBeatsIdle)
{
    auto m = model();
    const CpuConfig cfg;
    EXPECT_GT(m.power(busyVector(cfg)), 3.0 * m.power(ActivityVector{}));
}

TEST(Wattch, GatingCutsPower)
{
    auto m = model();
    const CpuConfig cfg;
    ActivityVector av = busyVector(cfg);
    const double free = m.power(av);
    av.gates = {true, true, true};
    // Gated structures ignore activity.
    const double gated = m.power(av);
    EXPECT_LT(gated, 0.5 * free);
}

TEST(Wattch, GatedFloorBelowIdle)
{
    auto m = model();
    ActivityVector av;
    av.gates = {true, true, true};
    EXPECT_LT(m.power(av), m.power(ActivityVector{}));
}

TEST(Wattch, PhantomRaisesToMax)
{
    auto m = model();
    ActivityVector av; // idle otherwise
    av.phantom = {true, true, true};
    const double ph = m.power(av);
    EXPECT_GT(ph, 0.6 * m.maxPower());
    EXPECT_LE(ph, m.maxPower() + 1e-9);
}

TEST(Wattch, MinMaxBracketEverything)
{
    auto m = model();
    const CpuConfig cfg;
    const double lo = m.minPower();
    const double hi = m.maxPower();
    EXPECT_LT(lo, hi);
    for (const auto &av :
         {ActivityVector{}, busyVector(cfg)}) {
        const double p = m.power(av);
        EXPECT_GE(p, lo - 1e-9);
        EXPECT_LE(p, hi + 1e-9);
    }
}

TEST(Wattch, CurrentIsPowerOverVdd)
{
    auto m = model();
    const CpuConfig cfg;
    const auto av = busyVector(cfg);
    EXPECT_NEAR(m.current(av), m.power(av) / 1.0, 1e-12);
}

TEST(Wattch, SwitchingActivityMatters)
{
    auto m = model();
    const CpuConfig cfg;
    ActivityVector quiet = busyVector(cfg);
    quiet.issueActivity = 0.0f;
    ActivityVector noisy = busyVector(cfg);
    noisy.issueActivity = 1.0f;
    EXPECT_GT(m.power(noisy), 1.15 * m.power(quiet));
}

TEST(Wattch, BreakdownSumsToTotal)
{
    auto m = model();
    const CpuConfig cfg;
    const double total = m.power(busyVector(cfg));
    double sum = 0.0;
    for (double p : m.lastBreakdown())
        sum += p;
    EXPECT_NEAR(sum, total, 1e-9);
}

TEST(Wattch, UnitNamesDistinct)
{
    EXPECT_STREQ(unitName(Unit::Fetch), "fetch");
    EXPECT_STRNE(unitName(Unit::Dl1), unitName(Unit::L2));
}

TEST(Wattch, ClockTracksGating)
{
    auto m = model();
    ActivityVector av;
    m.power(av);
    const double clockFree =
        m.lastBreakdown()[static_cast<size_t>(Unit::Clock)];
    av.gates = {true, true, true};
    m.power(av);
    const double clockGated =
        m.lastBreakdown()[static_cast<size_t>(Unit::Clock)];
    EXPECT_LT(clockGated, clockFree);
    EXPECT_GT(clockGated, 0.2 * clockFree); // fixed trunk remains
}

TEST(Wattch, RejectsBadVdd)
{
    PowerConfig pc;
    pc.vdd = 0.0;
    EXPECT_EXIT(WattchModel(pc, CpuConfig{}),
                ::testing::ExitedWithCode(1), "vdd");
}

// Integration: run a real program and check the current trace spans a
// meaningful dynamic range — the raw material of the dI/dt problem.
TEST(Wattch, CoreIntegrationDynamicRange)
{
    isa::ProgramBuilder b;
    b.ldit(1, 1.0).ldit(2, 3.0).ldiq(5, 200).ldiq(6, 1).ldiq(7, 0x8000);
    b.label("top");
    // Low-power phase: dependent divides.
    b.divt(3, 1, 2).divt(3, 3, 2).divt(3, 3, 2);
    // High-power phase: independent work.
    for (int i = 0; i < 12; ++i)
        b.addq(8 + (i % 8), 6, 5);
    b.stt(3, 7, 0).ldt(4, 7, 0);
    b.subq(5, 5, 6).bne(5, "top");
    b.halt();

    cpu::OoOCore core(CpuConfig{}, b.build());
    auto m = model();
    double lo = 1e99, hi = 0.0;
    while (!core.halted() && core.now() < 100000) {
        const double amps = m.current(core.cycle());
        lo = std::min(lo, amps);
        hi = std::max(hi, amps);
    }
    EXPECT_TRUE(core.halted());
    EXPECT_GT(hi, 2.0 * lo); // real current swing
    EXPECT_GE(lo, m.minCurrent() - 1e-9);
    EXPECT_LE(hi, m.maxCurrent() + 1e-9);
}

} // namespace
