/**
 * @file
 * vlint's own test suite: positive and negative fixture snippets for
 * every rule, suppression parsing, baseline round-trip, and the
 * "tree is clean" gate that lints the real repository.
 *
 * Fixtures are inline raw strings passed through lintSource() under a
 * synthetic path, because each rule's applicability depends on the
 * directory the file claims to live in.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analyzer.hpp"

using vlint::Finding;
using vlint::lintSource;

namespace {

std::vector<std::string>
rulesIn(const std::vector<Finding> &findings)
{
    std::vector<std::string> out;
    for (const Finding &f : findings)
        out.push_back(f.rule);
    return out;
}

bool
hasRule(const std::vector<Finding> &findings, const std::string &rule)
{
    return std::any_of(findings.begin(), findings.end(),
                       [&](const Finding &f) { return f.rule == rule; });
}

} // namespace

// ------------------------------------------------------------ det-rand

TEST(VlintDetRand, FlagsRandFamilyEverywhere)
{
    const auto f = lintSource("tests/test_foo.cpp", R"(
        int draw() { return rand(); }
    )");
    ASSERT_TRUE(hasRule(f, "det-rand"));
}

TEST(VlintDetRand, FlagsTimeAndClockCallsOnly)
{
    EXPECT_TRUE(hasRule(lintSource("src/core/x.cpp",
                                   "long t = time(nullptr);"),
                        "det-rand"));
    EXPECT_TRUE(hasRule(lintSource("src/core/x.cpp",
                                   "long t = clock();"),
                        "det-rand"));
    // `time` as a plain variable name is not a call.
    EXPECT_FALSE(hasRule(lintSource("src/core/x.cpp",
                                    "double time = 0.0;"),
                         "det-rand"));
}

TEST(VlintDetRand, RngHeaderIsExempt)
{
    EXPECT_FALSE(hasRule(lintSource("src/util/rng.hpp",
                                    "uint64_t rand();"),
                         "det-rand"));
}

TEST(VlintDetRand, IgnoresStringsAndComments)
{
    const auto f = lintSource("src/core/x.cpp", R"fix(
        // rand() in a comment is fine
        const char *s = "srand(time(nullptr))";
        /* mt19937 in a block comment */
    )fix");
    EXPECT_FALSE(hasRule(f, "det-rand"));
}

// ------------------------------------------------------- det-wallclock

TEST(VlintWallclock, FlagsSteadyClockInSrc)
{
    const auto f = lintSource(
        "src/core/x.cpp",
        "auto t0 = std::chrono::steady_clock::now();");
    ASSERT_TRUE(hasRule(f, "det-wallclock"));
}

TEST(VlintWallclock, ProfilerHeaderIsTheWhitelistedZone)
{
    EXPECT_FALSE(hasRule(
        lintSource("src/obs/profile.hpp",
                   "auto t0 = std::chrono::steady_clock::now();"),
        "det-wallclock"));
}

TEST(VlintWallclock, TracerImplementationIsWhitelisted)
{
    // The span tracer timestamps every record by design; both its
    // translation units sit in the second whitelisted zone.
    for (const char *file :
         {"src/obs/tracing.cpp", "src/obs/tracing.hpp"})
        EXPECT_FALSE(hasRule(
            lintSource(file,
                       "auto t0 = std::chrono::steady_clock::now();"),
            "det-wallclock"))
            << file;
}

TEST(VlintWallclock, TracingWhitelistDoesNotLeakToNeighbours)
{
    // The whitelist is a filename prefix on tracing.*, not a blanket
    // pass for src/obs/ — a near-miss neighbour stays flagged.
    for (const char *file :
         {"src/obs/tracing_extras.cpp", "src/obs/events.cpp"})
        EXPECT_TRUE(hasRule(
            lintSource(file,
                       "auto t0 = std::chrono::steady_clock::now();"),
            "det-wallclock"))
            << file;
}

TEST(VlintWallclock, BenchTimingHarnessesAreOutOfScope)
{
    // Benches measure wall time by design; the rule protects src/.
    EXPECT_FALSE(hasRule(
        lintSource("bench/bench_x.cpp",
                   "auto t0 = std::chrono::steady_clock::now();"),
        "det-wallclock"));
}

// ------------------------------------------- det-unordered / det-ptr-key

TEST(VlintUnordered, FlagsUnorderedContainersInResultDirs)
{
    for (const char *dir : {"src/core/", "src/pdn/", "src/power/",
                            "src/cpu/"}) {
        const auto f =
            lintSource(std::string(dir) + "x.hpp",
                       "std::unordered_map<int, int> m_;");
        EXPECT_TRUE(hasRule(f, "det-unordered")) << dir;
    }
}

TEST(VlintUnordered, OutsideResultDirsIsAllowed)
{
    EXPECT_FALSE(hasRule(lintSource("src/isa/x.hpp",
                                    "std::unordered_map<int, int> m;"),
                         "det-unordered"));
}

TEST(VlintPtrKey, FlagsPointerKeyedMap)
{
    const auto f = lintSource(
        "src/core/x.cpp",
        "std::map<const Node *, int> order; std::set<Foo *> live;");
    const auto rules = rulesIn(f);
    EXPECT_EQ(2, std::count(rules.begin(), rules.end(),
                            "det-ptr-key"));
}

TEST(VlintPtrKey, ValuePointersAreFine)
{
    EXPECT_FALSE(hasRule(
        lintSource("src/core/x.cpp",
                   "std::map<std::string, Node *> byName;"),
        "det-ptr-key"));
}

// ------------------------------------------------------------ fp-float

TEST(VlintFpFloat, FlagsFloatTypeAndLiteralInNumericDirs)
{
    const auto f = lintSource("src/linsys/x.cpp",
                              "float a = 1.0f; double b = 2.0;");
    const auto rules = rulesIn(f);
    EXPECT_EQ(2, std::count(rules.begin(), rules.end(), "fp-float"));
}

TEST(VlintFpFloat, HexIntegerEndingInFIsNotAFloat)
{
    EXPECT_FALSE(hasRule(lintSource("src/pdn/x.cpp",
                                    "unsigned mask = 0xFf;"),
                         "fp-float"));
    EXPECT_TRUE(hasRule(lintSource("src/pdn/x.cpp",
                                   "double h = 0x1.8p3f;"),
                        "fp-float"));
}

TEST(VlintFpFloat, CpuActivityFactorsMayUseFloat)
{
    EXPECT_FALSE(hasRule(lintSource("src/cpu/x.hpp",
                                    "float activity = 0.0f;"),
                         "fp-float"));
}

// ------------------------------------------------------ simd-intrinsic

TEST(VlintSimdIntrinsic, FlagsRawIntrinsicsOutsideWrapper)
{
    EXPECT_TRUE(hasRule(
        lintSource("src/pdn/x.cpp",
                   "__m256d v = _mm256_mul_pd(a, b);"),
        "simd-intrinsic"));
    EXPECT_TRUE(hasRule(
        lintSource("src/core/x.cpp",
                   "float64x2_t r = vfmaq_f64(c, a, b);"),
        "simd-intrinsic"));
    EXPECT_TRUE(hasRule(lintSource("bench/x.cpp",
                                   "auto z = _mm512_add_pd(a, b);"),
                        "simd-intrinsic"));
}

TEST(VlintSimdIntrinsic, WrapperHeaderIsExempt)
{
    EXPECT_FALSE(hasRule(
        lintSource("src/util/simd.hpp",
                   "__m256d v = _mm256_add_pd(a.v, b.v);"),
        "simd-intrinsic"));
}

TEST(VlintSimdIntrinsic, OrdinaryIdentifiersPass)
{
    EXPECT_FALSE(hasRule(
        lintSource("src/pdn/x.cpp",
                   "double vstep = vlast + mm * 2.0;"),
        "simd-intrinsic"));
}

TEST(VlintSimdIntrinsic, FloatStaysBannedInsideWrapper)
{
    // The wrapper escapes the intrinsic rule but not fp-float: its
    // packs are double-only by contract.
    EXPECT_TRUE(hasRule(lintSource("src/util/simd.hpp",
                                   "float x = 1.0f;"),
                        "fp-float"));
}

// -------------------------------------------------------------- raw-io

TEST(VlintRawIo, FlagsRawSyscallsOutsideSanctionedTus)
{
    EXPECT_TRUE(hasRule(
        lintSource("src/core/x.cpp",
                   "void *p = mmap(nullptr, n, prot, flags, fd, 0);"),
        "raw-io"));
    EXPECT_TRUE(hasRule(lintSource("tools/foo/main.cpp",
                                   "int s = ::socket(AF_UNIX, t, 0);"),
                        "raw-io"));
    EXPECT_TRUE(hasRule(lintSource("src/svc/other.cpp",
                                   "int c = accept4(fd, a, l, f);"),
                        "raw-io"));
}
TEST(VlintRawIo, StoreAndSweepdTusAreExempt)
{
    EXPECT_FALSE(hasRule(
        lintSource("src/core/trace_store.cpp",
                   "void *p = mmap(nullptr, n, prot, flags, fd, 0);"),
        "raw-io"));
    EXPECT_FALSE(hasRule(lintSource("src/svc/sweepd.cpp",
                                    "int s = ::socket(AF_UNIX, t, 0);"),
                         "raw-io"));
    // The wire codec + client moved into core (protocol split); its TU
    // keeps the exemption that used to cover the monolithic daemon.
    EXPECT_FALSE(hasRule(lintSource("src/core/sweep_client.cpp",
                                    "int s = ::socket(AF_UNIX, t, 0);"),
                         "raw-io"));
}
TEST(VlintRawIo, MemberAndQualifiedCallsAreNotSyscalls)
{
    EXPECT_FALSE(hasRule(lintSource("src/core/x.cpp",
                                    "db.connect(url); q->accept(v);"),
                         "raw-io"));
    EXPECT_FALSE(hasRule(lintSource("src/core/x.cpp",
                                    "auto f = sig::connect(slot);"),
                         "raw-io"));
    // Comments and strings never fire (token-stream rule).
    EXPECT_FALSE(hasRule(lintSource("src/core/x.cpp",
                                    "// call socket(2) by hand\n"
                                    "const char *s = \"mmap(\";"),
                         "raw-io"));
}

// ---------------------------------------------------------- fp-pow-int

TEST(VlintPowInt, FlagsIntegerExponent)
{
    EXPECT_TRUE(hasRule(lintSource("src/pdn/x.cpp",
                                   "double y = std::pow(x, 2);"),
                        "fp-pow-int"));
    EXPECT_TRUE(hasRule(lintSource("src/pdn/x.cpp",
                                   "double y = std::pow(x, -3);"),
                        "fp-pow-int"));
}

TEST(VlintPowInt, RealExponentIsFine)
{
    EXPECT_FALSE(hasRule(lintSource("src/pdn/x.cpp",
                                    "double y = std::pow(err, -0.5);"),
                         "fp-pow-int"));
    EXPECT_FALSE(hasRule(
        lintSource("src/pdn/x.cpp", "double y = std::pow(x, n);"),
        "fp-pow-int"));
}

// ------------------------------------------------------- thread-static

TEST(VlintThreadStatic, FlagsBareMutableLocalStatic)
{
    const auto f = lintSource("src/core/x.cpp", R"(
        int &counter() {
            static int calls = 0;
            return calls;
        }
    )");
    ASSERT_TRUE(hasRule(f, "thread-static"));
}

TEST(VlintThreadStatic, ConstAndSyncObjectsPass)
{
    const auto f = lintSource("src/core/x.cpp", R"(
        const char *name() {
            static const char *const names[] = {"a", "b"};
            static std::mutex m;
            static std::atomic<int> hits{0};
            static constexpr int k = 3;
            return names[0];
        }
    )");
    EXPECT_FALSE(hasRule(f, "thread-static"));
}

TEST(VlintThreadStatic, MutablePointerArrayBehindConstIsCaught)
{
    // The exact shape fixed in src/obs/events.cpp this PR: the
    // pointees are const but the pointers are not.
    const auto f = lintSource("src/core/x.cpp", R"(
        void emit() {
            static const char *levels[] = {"low", "high"};
            use(levels);
        }
    )");
    ASSERT_TRUE(hasRule(f, "thread-static"));
}

TEST(VlintThreadStatic, MutexInDeclarationRegionLegitimizes)
{
    // The experiments.cpp idiom: map + mutex declared together.
    const auto f = lintSource("src/core/x.cpp", R"(
        Entry *lookup(Key k) {
            static std::mutex cacheMutex;
            static std::map<Key, Entry> cache;
            std::lock_guard<std::mutex> lock(cacheMutex);
            return &cache[k];
        }
    )");
    EXPECT_FALSE(hasRule(f, "thread-static"));
}

TEST(VlintThreadStatic, StaticAfterLambdaCallArgumentIsStillSeen)
{
    // Regression: the declaration scanner resynchronized one token too
    // far after a braced construct inside a statement, so a lambda
    // passed as a call argument desynced the scope tracker and masked
    // every static later in the function.
    const auto f = lintSource("src/core/x.cpp", R"(
        void poll(Queue &q) {
            q.forEach([&](int v) { acc += v; });
            static int polls = 0;
            ++polls;
        }
    )");
    ASSERT_TRUE(hasRule(f, "thread-static"));
}

TEST(VlintThreadStatic, ClassStaticsAndFileStaticsAreNotLocal)
{
    const auto f = lintSource("src/core/x.cpp", R"(
        static int fileLocalFunctionCount = 0;   // namespace scope
        class Foo {
            static int instances_;               // class scope
            static Foo &instance();
        };
        namespace detail {
        static double tableau[4];                // namespace scope
        }
    )");
    EXPECT_FALSE(hasRule(f, "thread-static"));
}

// ----------------------------------------------------- obs-metric-name

TEST(VlintMetricName, ValidatesRegistrarLiterals)
{
    EXPECT_TRUE(hasRule(
        lintSource("src/cpu/x.cpp", R"(r.counter("Fetch.Insts", "d");)"),
        "obs-metric-name"));
    EXPECT_TRUE(hasRule(
        lintSource("src/cpu/x.cpp",
                   R"(r.derivedGauge("commit..ipc", "d", fn);)"),
        "obs-metric-name"));
    EXPECT_FALSE(hasRule(
        lintSource("src/cpu/x.cpp",
                   R"(bind("fetch.stall_icache", "d", s.x);)"),
        "obs-metric-name"));
}

TEST(VlintMetricName, NonLiteralFirstArgIsSkipped)
{
    EXPECT_FALSE(hasRule(
        lintSource("src/cpu/x.cpp",
                   R"(r.counter(prefix + ".cycles", "desc");)"),
        "obs-metric-name"));
}

// ----------------------------------------------------------- hyg-guard

TEST(VlintGuard, AcceptsPragmaOnceAndIfndefGuards)
{
    EXPECT_FALSE(hasRule(lintSource("src/core/a.hpp",
                                    "#pragma once\nint x;\n"),
                         "hyg-guard"));
    EXPECT_FALSE(hasRule(
        lintSource("src/core/b.hpp",
                   "#ifndef VGUARD_B_HPP\n#define VGUARD_B_HPP\n"
                   "#endif\n"),
        "hyg-guard"));
}

TEST(VlintGuard, FlagsUnguardedHeader)
{
    EXPECT_TRUE(hasRule(lintSource("src/core/c.hpp",
                                   "#include <vector>\nint x;\n"),
                        "hyg-guard"));
    // Mismatched #define does not count as a guard.
    EXPECT_TRUE(hasRule(
        lintSource("src/core/d.hpp",
                   "#ifndef VGUARD_D_HPP\n#define OTHER\n#endif\n"),
        "hyg-guard"));
}

// --------------------------------------------------- hyg-include-order

TEST(VlintIncludeOrder, OwnHeaderMustComeFirst)
{
    const std::set<std::string> tree = {"src/core/foo.hpp",
                                        "src/core/foo.cpp"};
    EXPECT_TRUE(hasRule(lintSource("src/core/foo.cpp",
                                   "#include <vector>\n"
                                   "#include \"core/foo.hpp\"\n",
                                   tree),
                        "hyg-include-order"));
    EXPECT_FALSE(hasRule(lintSource("src/core/foo.cpp",
                                    "#include \"core/foo.hpp\"\n"
                                    "#include <vector>\n",
                                    tree),
                         "hyg-include-order"));
    EXPECT_TRUE(hasRule(
        lintSource("src/core/foo.cpp", "#include <vector>\n", tree),
        "hyg-include-order"));
}

TEST(VlintIncludeOrder, NoSiblingHeaderMeansNoRule)
{
    EXPECT_FALSE(hasRule(lintSource("src/core/main.cpp",
                                    "#include <vector>\n",
                                    {"src/core/main.cpp"}),
                         "hyg-include-order"));
}

// ------------------------------------------------------- hyg-using-ns

TEST(VlintUsingNs, FlagsUsingNamespaceInHeadersOnly)
{
    EXPECT_TRUE(hasRule(lintSource("src/core/x.hpp",
                                   "using namespace std;"),
                        "hyg-using-ns"));
    EXPECT_FALSE(hasRule(lintSource("src/core/x.cpp",
                                    "using namespace std::chrono;"),
                         "hyg-using-ns"));
}

// -------------------------------------------------------- suppressions

TEST(VlintSuppression, SameLineAndPrecedingLineForms)
{
    std::vector<Finding> suppressed;
    const auto sameLine = lintSource(
        "src/core/x.cpp",
        "int r = rand(); // vlint: allow(det-rand) fixture needs it\n",
        {}, &suppressed);
    EXPECT_FALSE(hasRule(sameLine, "det-rand"));
    ASSERT_EQ(1u, suppressed.size());
    EXPECT_EQ("det-rand", suppressed[0].rule);

    const auto prevLine = lintSource(
        "src/core/x.cpp",
        "// vlint: allow(det-rand) fixture needs it\nint r = rand();\n");
    EXPECT_FALSE(hasRule(prevLine, "det-rand"));
}

TEST(VlintSuppression, OnlyNamedRulesAreSilenced)
{
    const auto f = lintSource(
        "src/core/x.cpp",
        "int r = rand(); // vlint: allow(det-wallclock) wrong rule\n");
    EXPECT_TRUE(hasRule(f, "det-rand"));
}

TEST(VlintSuppression, CommaListCoversMultipleRules)
{
    const auto f = lintSource(
        "src/linsys/x.cpp",
        "float r = rand(); "
        "// vlint: allow(det-rand, fp-float) fixture\n");
    EXPECT_FALSE(hasRule(f, "det-rand"));
    EXPECT_FALSE(hasRule(f, "fp-float"));
}

TEST(VlintSuppression, MissingReasonIsItselfAFinding)
{
    const auto f = lintSource(
        "src/core/x.cpp",
        "int r = rand(); // vlint: allow(det-rand)\n");
    EXPECT_TRUE(hasRule(f, "hyg-suppression"));
}

TEST(VlintSuppression, MalformedCommentIsAFinding)
{
    const auto f = lintSource("src/core/x.cpp",
                              "// vlint: allow det-rand oops\n");
    EXPECT_TRUE(hasRule(f, "hyg-suppression"));
}

// ------------------------------------------------------------ baseline

TEST(VlintBaseline, RoundTripMatchesAndReportsStale)
{
    const auto findings =
        lintSource("src/core/x.cpp", "int r = rand();\n");
    ASSERT_FALSE(findings.empty());

    const std::string rendered = vlint::renderBaseline(findings);
    auto parsed = vlint::parseBaseline(rendered);
    EXPECT_EQ(findings.size(), parsed.size());
    for (const Finding &f : findings)
        EXPECT_EQ(1u, parsed.count(vlint::baselineKey(f)));

    // Reindentation must not change the key (whitespace-normalized
    // snippet), so baselines survive clang-format churn.
    const auto reindented =
        lintSource("src/core/x.cpp", "    int  r =  rand();\n");
    ASSERT_FALSE(reindented.empty());
    EXPECT_EQ(vlint::baselineKey(findings[0]),
              vlint::baselineKey(reindented[0]));

    // Comments and blank lines are ignored when parsing.
    auto withComments =
        vlint::parseBaseline("# header\n\n" + rendered);
    EXPECT_EQ(parsed, withComments);
}

TEST(VlintBaseline, LexerHandlesRawStringsAndContinuations)
{
    // A raw string containing what looks like code must not trip any
    // rule, and a continued #include directive is still one directive.
    const auto f = lintSource("src/core/x.cpp",
                              "const char *prog = R\"(rand(); "
                              "float x = 1.0f;)\";\n");
    EXPECT_TRUE(f.empty());
}

// ---------------------------------------------------------- tree clean

#ifdef VGUARD_SOURCE_DIR
TEST(VlintTree, RepositoryLintsClean)
{
    vlint::Options opt;
    opt.root = VGUARD_SOURCE_DIR;
    const vlint::Report report = vlint::lintTree(opt);
    EXPECT_GT(report.filesScanned, 100);
    for (const Finding &f : report.findings)
        ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule
                      << "] " << f.message;
    EXPECT_TRUE(report.staleBaseline.empty())
        << "baseline entries no longer match any finding";
    // Every suppression in the tree is intentional; keep the counts in
    // sync when adding one so drive-by allows stand out in review.
    // Current ledger: 9 alloc-hot (block-scratch resizes and other
    // amortized allocations justified inline) + 3 single-file allows.
    size_t allocHot = 0;
    for (const Finding &f : report.suppressed)
        if (f.rule == "alloc-hot")
            ++allocHot;
    EXPECT_LE(allocHot, 9u)
        << "unexpected growth in alloc-hot suppressions";
    EXPECT_LE(report.suppressed.size(), 12u)
        << "unexpected growth in inline suppressions";
    // The cross-TU pass saw the whole tree: roots seeded, hot kernels
    // annotated, and a non-trivial call graph linked.
    EXPECT_GT(report.stats.functions, 500u);
    EXPECT_GT(report.stats.callEdges, 1000u);
    EXPECT_GE(report.stats.roots, 10u);
    EXPECT_GE(report.stats.hot, 5u);
}

TEST(VlintTree, JsonReportIsWellFormed)
{
    vlint::Options opt;
    opt.root = VGUARD_SOURCE_DIR;
    opt.captureGraphJson = true;
    const vlint::Report report = vlint::lintTree(opt);
    const std::string json = vlint::reportJson(report);
    EXPECT_NE(json.find("\"version\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"files_scanned\""), std::string::npos);
    EXPECT_NE(json.find("\"counts\""), std::string::npos);
    EXPECT_NE(json.find("\"stats\""), std::string::npos);
    EXPECT_NE(json.find("\"wall_seconds\""), std::string::npos);
    // Balanced braces as a cheap structural sanity check (full schema
    // validation runs in CI with jq).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    // --graph-json rides on the same run: present and structurally
    // sane when capture is requested.
    ASSERT_FALSE(report.graphJson.empty());
    EXPECT_NE(report.graphJson.find("\"functions\""),
              std::string::npos);
    EXPECT_EQ(std::count(report.graphJson.begin(),
                         report.graphJson.end(), '{'),
              std::count(report.graphJson.begin(),
                         report.graphJson.end(), '}'));
}
#endif
