/**
 * @file
 * Machine-configuration property sweeps: the pipeline must stay
 * correct and behave monotonically as Table-1 parameters scale
 * (width, window size, cache latency, branch penalty).
 */

#include <tuple>

#include <gtest/gtest.h>

#include "cpu/core.hpp"
#include "isa/program.hpp"
#include "workloads/kernels.hpp"
#include "workloads/spec_proxy.hpp"

namespace {

using namespace vguard;
using namespace vguard::cpu;

uint64_t
cyclesToHalt(const CpuConfig &cfg, const isa::Program &p,
             uint64_t guard = 10'000'000)
{
    OoOCore core(cfg, p);
    while (!core.halted() && core.now() < guard)
        core.cycle();
    EXPECT_TRUE(core.halted());
    return core.stats().cycles;
}

class WidthSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(WidthSweep, CorrectAtAnyWidth)
{
    CpuConfig cfg;
    cfg.fetchWidth = GetParam();
    cfg.decodeWidth = GetParam();
    cfg.issueWidth = GetParam();
    cfg.commitWidth = GetParam();
    const auto p = workloads::busyKernel(300);
    OoOCore core(cfg, p);
    while (!core.halted() && core.now() < 10'000'000)
        core.cycle();
    ASSERT_TRUE(core.halted());
    // Same committed count regardless of width.
    OoOCore ref(CpuConfig{}, p);
    while (!ref.halted())
        ref.cycle();
    EXPECT_EQ(core.stats().committed, ref.stats().committed);
    EXPECT_LE(core.stats().ipc(), GetParam() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthSweep,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(MachineSweep, WiderIsNotSlower)
{
    const auto p = workloads::busyKernel(400);
    CpuConfig narrow;
    narrow.fetchWidth = narrow.decodeWidth = narrow.issueWidth =
        narrow.commitWidth = 2;
    CpuConfig wide; // default 8-wide
    EXPECT_GE(cyclesToHalt(narrow, p), cyclesToHalt(wide, p));
}

TEST(MachineSweep, BiggerWindowIsNotSlower)
{
    const auto p = workloads::buildSpecProxy(
        workloads::specProfile("swim"), 7, 150);
    CpuConfig small;
    small.ruuSize = 32;
    small.lsqSize = 16;
    CpuConfig big; // 256/128
    EXPECT_GE(cyclesToHalt(small, p), cyclesToHalt(big, p));
}

TEST(MachineSweep, SlowerMemoryIsSlower)
{
    const auto p = workloads::streamKernel(512.0, 300);
    CpuConfig fast;
    fast.memLatency = 100;
    CpuConfig slow;
    slow.memLatency = 500;
    EXPECT_GT(cyclesToHalt(slow, p), cyclesToHalt(fast, p));
}

TEST(MachineSweep, BiggerBranchPenaltyIsSlower)
{
    // A mispredict-heavy proxy feels the refill penalty directly.
    const auto p =
        workloads::buildSpecProxy(workloads::specProfile("gcc"), 3, 400);
    CpuConfig cheap;
    cheap.branchPenalty = 2;
    CpuConfig dear;
    dear.branchPenalty = 20;
    EXPECT_GT(cyclesToHalt(dear, p), cyclesToHalt(cheap, p));
}

TEST(MachineSweep, SmallerCachesMissMore)
{
    // 32 KB footprint, walked ~4 times: resident in the 64 KB L1 but
    // thrashing a 4 KB one.
    const auto p = workloads::streamKernel(32.0, 2000);
    CpuConfig big;
    CpuConfig tiny;
    tiny.dl1.sizeBytes = 4 * 1024;
    OoOCore a(big, p), b(tiny, p);
    while (!a.halted())
        a.cycle();
    while (!b.halted())
        b.cycle();
    EXPECT_GT(b.mem().dl1().stats().misses,
              a.mem().dl1().stats().misses);
}

TEST(MachineSweep, RejectsDegenerateConfigs)
{
    CpuConfig bad;
    bad.ruuSize = 0;
    EXPECT_EXIT(OoOCore(bad, workloads::busyKernel(1)),
                ::testing::ExitedWithCode(1), "RUU");
    CpuConfig badMem;
    badMem.memLatency = 100000; // exceeds the event wheel
    EXPECT_EXIT(OoOCore(badMem, workloads::busyKernel(1)),
                ::testing::ExitedWithCode(1), "wheel");
}

} // namespace
