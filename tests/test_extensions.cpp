/**
 * @file
 * Tests for the Section-6 extensions: issue-limit throttling, the
 * P-I-D controller, and asymmetric gate/phantom actuation.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/actuator.hpp"
#include "core/experiments.hpp"
#include "core/pid_controller.hpp"
#include "core/trace.hpp"
#include "core/voltage_sim.hpp"
#include "cpu/core.hpp"
#include "pdn/impulse.hpp"
#include "pdn/partitioned_convolver.hpp"
#include "power/wattch.hpp"
#include "workloads/kernels.hpp"
#include "workloads/stressmark.hpp"

namespace {

using namespace vguard;
using namespace vguard::core;

// -------------------------------------------------------- issue limit

TEST(IssueLimit, CapsThroughput)
{
    cpu::CpuConfig cfg;
    cpu::OoOCore fast(cfg, workloads::busyKernel(2000));
    cpu::OoOCore slow(cfg, workloads::busyKernel(2000));
    slow.setIssueLimit(2);
    while (!fast.halted() && fast.now() < 500000)
        fast.cycle();
    while (!slow.halted() && slow.now() < 500000)
        slow.cycle();
    ASSERT_TRUE(fast.halted());
    ASSERT_TRUE(slow.halted());
    EXPECT_EQ(fast.stats().committed, slow.stats().committed);
    EXPECT_GT(slow.stats().cycles, 2 * fast.stats().cycles);
    // With a 2-wide cap, IPC cannot exceed 2.
    EXPECT_LE(slow.stats().ipc(), 2.0 + 1e-9);
}

TEST(IssueLimit, ZeroBlocksIssueEntirely)
{
    cpu::CpuConfig cfg;
    cpu::OoOCore core(cfg, workloads::busyKernel(100));
    core.setIssueLimit(0);
    for (int i = 0; i < 200; ++i)
        core.cycle();
    EXPECT_EQ(core.stats().issued, 0u);
    // Releasing the limit lets everything complete.
    core.setIssueLimit(~0u);
    while (!core.halted() && core.now() < 200000)
        core.cycle();
    EXPECT_TRUE(core.halted());
}

TEST(IssueLimit, AboveWidthIsNoOp)
{
    cpu::CpuConfig cfg;
    cpu::OoOCore a(cfg, workloads::busyKernel(500));
    cpu::OoOCore b(cfg, workloads::busyKernel(500));
    b.setIssueLimit(1000);
    while (!a.halted())
        a.cycle();
    while (!b.halted())
        b.cycle();
    EXPECT_EQ(a.stats().cycles, b.stats().cycles);
}

// ---------------------------------------------------------------- PID

TEST(Pid, RejectsBadConfig)
{
    PidConfig pc;
    EXPECT_EXIT(PidController(pc, 0), ::testing::ExitedWithCode(1),
                "width");
    pc.band = 0.0;
    EXPECT_EXIT(PidController(pc, 8), ::testing::ExitedWithCode(1),
                "band");
}

TEST(Pid, QuietAtSetpoint)
{
    PidConfig pc;
    pc.sensorDelay = 0;
    pc.computeDelay = 0;
    PidController pid(pc, 8);
    cpu::OoOCore core(cpu::CpuConfig{}, workloads::busyKernel());
    for (int i = 0; i < 100; ++i)
        pid.step(1.0, core); // comfortably above the 0.972 setpoint
    EXPECT_EQ(pid.gatedCycles(), 0u);
    EXPECT_EQ(pid.phantomCycles(), 0u);
    EXPECT_EQ(core.issueLimit(), 8u);
}

TEST(Pid, SaturatesLowOnDeepSag)
{
    PidConfig pc;
    pc.sensorDelay = 0;
    pc.computeDelay = 0;
    PidController pid(pc, 8);
    cpu::OoOCore core(cpu::CpuConfig{}, workloads::busyKernel());
    for (int i = 0; i < 20; ++i)
        pid.step(0.93, core);
    EXPECT_GT(pid.gatedCycles(), 0u);
    EXPECT_TRUE(core.gates().fu);
    EXPECT_EQ(core.issueLimit(), 0u);
}

TEST(Pid, PhantomOnOvershoot)
{
    PidConfig pc;
    pc.sensorDelay = 0;
    pc.computeDelay = 0;
    PidController pid(pc, 8);
    cpu::OoOCore core(cpu::CpuConfig{}, workloads::busyKernel());
    for (int i = 0; i < 50; ++i)
        pid.step(1.06, core);
    EXPECT_GT(pid.phantomCycles(), 0u);
}

TEST(Pid, ProportionalRegionThrottlesPartially)
{
    PidConfig pc;
    pc.sensorDelay = 0;
    pc.computeDelay = 0;
    pc.ki = 0.0; // isolate the P term
    pc.kd = 0.0;
    PidController pid(pc, 8);
    cpu::OoOCore core(cpu::CpuConfig{}, workloads::busyKernel());
    pid.step(0.9665, core); // mild sag below the 0.972 setpoint
    EXPECT_GT(core.issueLimit(), 0u);
    EXPECT_LT(core.issueLimit(), 8u);
    EXPECT_EQ(pid.throttledCycles(), 1u);
}

TEST(Pid, DelayLineAgesReadings)
{
    PidConfig pc;
    pc.sensorDelay = 2;
    pc.computeDelay = 2;
    pc.ki = 0.0;
    pc.kd = 0.0;
    PidController pid(pc, 8);
    cpu::OoOCore core(cpu::CpuConfig{}, workloads::busyKernel());
    // A deep sag must not be acted on until 4 cycles later.
    pid.step(0.90, core);
    EXPECT_EQ(core.issueLimit(), 8u);
    pid.step(1.0, core);
    pid.step(1.0, core);
    pid.step(1.0, core);
    pid.step(1.0, core); // now the 0.90 reading arrives
    EXPECT_LT(core.issueLimit(), 8u);
}

TEST(Pid, ProtectsStressmark)
{
    const auto cal = workloads::StressmarkBuilder::calibrate(
        60, referenceMachine().cpu);
    RunSpec rs;
    rs.impedanceScale = 2.0;
    rs.controllerEnabled = false;
    VoltageSim sim(makeSimConfig(rs),
                   workloads::StressmarkBuilder::build(cal.params));
    PidConfig pc;
    pc.sensorDelay = 1;
    PidController pid(pc, referenceMachine().cpu.issueWidth);
    double vMin = 2.0;
    for (int i = 0; i < 60000; ++i) {
        const auto s = sim.step();
        pid.step(s.volts, sim.core());
        vMin = std::min(vMin, s.volts);
    }
    EXPECT_GE(vMin, 0.95);
}

// --------------------------------------------------------- asymmetric

TEST(Asymmetric, DistinctMasks)
{
    cpu::OoOCore core(cpu::CpuConfig{}, workloads::busyKernel());
    Actuator act(ActuatorKind::FuDl1Il1, ActuatorKind::Fu);
    act.apply(VoltageLevel::Low, core);
    EXPECT_TRUE(core.gates().il1); // coarse gate set
    act.apply(VoltageLevel::High, core);
    EXPECT_FALSE(core.gates().any());
    // Phantom uses only the FU set.
    EXPECT_EQ(act.phantomKind(), ActuatorKind::Fu);
    EXPECT_EQ(act.gateKind(), ActuatorKind::FuDl1Il1);
}

TEST(Asymmetric, SymmetricCtorMatches)
{
    Actuator a(ActuatorKind::FuDl1);
    EXPECT_EQ(a.gateKind(), a.phantomKind());
}

// ------------------------------------------------------------- trace

TEST(Trace, RecordsAndSummarises)
{
    RunSpec rs;
    rs.impedanceScale = 2.0;
    rs.controllerEnabled = false;
    VoltageSim sim(makeSimConfig(rs), workloads::busyKernel());
    TraceRecorder rec(4096);
    rec.capture(sim, 2000);
    EXPECT_EQ(rec.size(), 2000u);
    const auto sum = rec.summary();
    EXPECT_GT(sum.meanAmps, 5.0);
    EXPECT_GE(sum.peakAmps, sum.meanAmps);
    EXPECT_LT(sum.minV, sum.maxV);
    EXPECT_EQ(sum.gatedCycles, 0u);
}

TEST(Trace, RingKeepsNewestSamples)
{
    TraceRecorder rec(10);
    for (uint64_t c = 0; c < 25; ++c) {
        TraceSample s;
        s.cycle = c;
        rec.record(s);
    }
    EXPECT_EQ(rec.size(), 10u);
    EXPECT_EQ(rec.at(0).cycle, 15u); // oldest retained
    EXPECT_EQ(rec.at(9).cycle, 24u); // newest
    const auto lin = rec.linearised();
    for (size_t i = 1; i < lin.size(); ++i)
        EXPECT_EQ(lin[i].cycle, lin[i - 1].cycle + 1);
}

TEST(Trace, CsvFormatAndStride)
{
    TraceRecorder rec(16);
    for (uint64_t c = 0; c < 8; ++c) {
        TraceSample s;
        s.cycle = c;
        s.amps = 10.0 + c;
        s.volts = 1.0;
        s.gated = c % 2 == 0;
        rec.record(s);
    }
    const std::string csv = rec.csv(2);
    EXPECT_NE(csv.find("cycle,amps,volts,gated,phantom"),
              std::string::npos);
    // Header + 4 decimated rows.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);
    EXPECT_NE(csv.find("0,10.0000,1.000000,1,0"), std::string::npos);
}

TEST(Trace, WriteCsvRoundTrip)
{
    TraceRecorder rec(8);
    TraceSample s;
    s.cycle = 3;
    s.amps = 20.0;
    s.volts = 0.98;
    rec.record(s);
    const std::string path = "/tmp/vguard_trace_test.csv";
    rec.writeCsv(path);
    FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[256] = {};
    const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    std::remove(path.c_str());
    EXPECT_GT(n, 10u);
    EXPECT_NE(std::string(buf).find("3,20.0000"), std::string::npos);
}

TEST(Trace, ClearResets)
{
    TraceRecorder rec(4);
    rec.record(TraceSample{});
    rec.clear();
    EXPECT_TRUE(rec.empty());
}

// ------------------------------------------------------ wakeup kernel

TEST(WakeupKernel, SerialisedMissesThenBursts)
{
    cpu::CpuConfig cfg;
    cpu::OoOCore core(cfg, workloads::wakeupKernel(160, 40));
    power::WattchModel pm(power::PowerConfig{}, cfg);
    uint64_t lowCycles = 0, highCycles = 0;
    while (!core.halted() && core.now() < 200000) {
        const double amps = pm.current(core.cycle());
        lowCycles += amps < 16.0;
        highCycles += amps > 26.0;
    }
    ASSERT_TRUE(core.halted());
    // Memory-dominated: most cycles idle, with real bursts present.
    EXPECT_GT(lowCycles, 6u * highCycles);
    EXPECT_GT(highCycles, 200u);
    // Every iteration misses to memory (addresses never repeat).
    EXPECT_GE(core.mem().dl1().stats().misses, 40u);
    EXPECT_GE(core.mem().l2().stats().misses, 40u);
}

TEST(Asymmetric, ProtectsWithWeakPhantom)
{
    // Gate with the full set, phantom with FU only, on a package where
    // the high side binds (tight pinned vHigh).
    const auto cal = workloads::StressmarkBuilder::calibrate(
        60, referenceMachine().cpu);
    RunSpec rs;
    rs.impedanceScale = 3.0;
    rs.delayCycles = 2;
    rs.actuator = ActuatorKind::FuDl1Il1;
    auto cfg = makeSimConfig(rs);
    cfg.phantomActuator = ActuatorKind::Fu;
    cfg.sensor->vHigh = 1.017;
    VoltageSim sim(cfg,
                   workloads::StressmarkBuilder::build(cal.params));
    const auto res = sim.run(60000);
    EXPECT_EQ(res.emergencyCycles(), 0u);
    EXPECT_GT(res.phantomCycles, 0u);
}

// --------------------------------------- convolver golden equivalence

TEST(Convolution, PartitionedMatchesNaiveOnStressmarkTrace)
{
    // Golden equivalence on real input: run the paper's dI/dt
    // stressmark through the cycle core + Wattch model to get an
    // adversarial resonant current trace, then require the partitioned
    // convolver to reproduce the naive reference voltage-for-voltage
    // on the full (untruncated-length) kernel.
    const Machine m = referenceMachine();
    const auto cal = workloads::StressmarkBuilder::calibrate(60, m.cpu);
    cpu::OoOCore core(m.cpu,
                      workloads::StressmarkBuilder::build(cal.params));
    power::WattchModel pm(m.power, m.cpu);
    std::vector<double> amps;
    amps.reserve(20000);
    for (int t = 0; t < 20000 && !core.halted(); ++t)
        amps.push_back(pm.current(core.cycle()));
    ASSERT_GT(amps.size(), 15000u); // trace long enough to matter

    const auto pkg = pdn::PackageModel(referencePackage(2.0));
    const auto h = pdn::impulseResponse(pkg);
    const double iBias = pm.minCurrent();
    pdn::Convolver naive(h, 1.0, iBias);
    pdn::PartitionedConvolver part(h, 1.0, iBias);
    ASSERT_GT(part.partitions(), 1u); // kernel long enough to matter

    double maxDev = 0.0;
    for (double a : amps)
        maxDev = std::max(maxDev,
                          std::fabs(naive.step(a) - part.step(a)));
    EXPECT_LT(maxDev, 1e-12);
}

} // namespace
