/**
 * @file
 * Unit tests for src/isa: opcode traits, program building, sparse
 * memory, and functional execution including control flow, memory and
 * the CMOVNE three-source case from the paper's stressmark loop.
 */

#include <string>

#include <gtest/gtest.h>

#include "isa/executor.hpp"
#include "isa/memory.hpp"
#include "isa/opcodes.hpp"
#include "isa/program.hpp"

namespace {

using namespace vguard::isa;

TEST(Opcodes, Classes)
{
    EXPECT_EQ(opClass(Opcode::ADDQ), OpClass::IntAlu);
    EXPECT_EQ(opClass(Opcode::MULQ), OpClass::IntMult);
    EXPECT_EQ(opClass(Opcode::DIVQ), OpClass::IntDiv);
    EXPECT_EQ(opClass(Opcode::ADDT), OpClass::FpAdd);
    EXPECT_EQ(opClass(Opcode::MULT), OpClass::FpMult);
    EXPECT_EQ(opClass(Opcode::DIVT), OpClass::FpDiv);
    EXPECT_EQ(opClass(Opcode::LDQ), OpClass::Load);
    EXPECT_EQ(opClass(Opcode::STT), OpClass::Store);
    EXPECT_EQ(opClass(Opcode::BEQ), OpClass::Branch);
    EXPECT_EQ(opClass(Opcode::RET), OpClass::Branch);
    EXPECT_EQ(opClass(Opcode::NOP), OpClass::Nop);
}

TEST(Opcodes, Predicates)
{
    EXPECT_TRUE(isLoad(Opcode::LDT));
    EXPECT_FALSE(isLoad(Opcode::STQ));
    EXPECT_TRUE(isStore(Opcode::STT));
    EXPECT_TRUE(isControl(Opcode::CALL));
    EXPECT_TRUE(isCondBranch(Opcode::BGE));
    EXPECT_FALSE(isCondBranch(Opcode::BR));
    EXPECT_TRUE(isFp(Opcode::DIVT));
    EXPECT_FALSE(isFp(Opcode::DIVQ));
    EXPECT_TRUE(isFp(Opcode::LDT));
}

TEST(Opcodes, MnemonicsDistinct)
{
    EXPECT_STREQ(mnemonic(Opcode::ADDQ), "addq");
    EXPECT_STREQ(mnemonic(Opcode::DIVT), "divt");
    EXPECT_STRNE(mnemonic(Opcode::LDQ), mnemonic(Opcode::LDT));
}

TEST(StaticInst, SourcesSkipZeroRegs)
{
    StaticInst si{Opcode::ADDQ, intReg(1), intReg(31), intReg(2), 0, -1};
    uint8_t srcs[3];
    ASSERT_EQ(si.sources(srcs), 1u); // r31 is the zero register
    EXPECT_EQ(srcs[0], intReg(2));
}

TEST(StaticInst, CmovneReadsDest)
{
    StaticInst si{Opcode::CMOVNE, intReg(3), intReg(1), intReg(2), 0, -1};
    uint8_t srcs[3];
    ASSERT_EQ(si.sources(srcs), 3u);
    EXPECT_EQ(srcs[2], intReg(3));
}

TEST(SparseMemory, ZeroFill)
{
    SparseMemory m;
    EXPECT_EQ(m.read(0x1000), 0u);
    EXPECT_EQ(m.pageCount(), 0u);
}

TEST(SparseMemory, ReadBack)
{
    SparseMemory m;
    m.write(0x2008, 0xdeadbeefcafef00dull);
    EXPECT_EQ(m.read(0x2008), 0xdeadbeefcafef00dull);
    EXPECT_EQ(m.read(0x2010), 0u);
    EXPECT_EQ(m.pageCount(), 1u);
}

TEST(SparseMemory, DoubleRoundTrip)
{
    SparseMemory m;
    m.writeDouble(0x100, 3.25);
    EXPECT_DOUBLE_EQ(m.readDouble(0x100), 3.25);
}

TEST(SparseMemory, DistantPages)
{
    SparseMemory m;
    m.write(0x0, 1);
    m.write(0x100000, 2);
    EXPECT_EQ(m.pageCount(), 2u);
    EXPECT_EQ(m.read(0x0), 1u);
    EXPECT_EQ(m.read(0x100000), 2u);
}

TEST(SparseMemory, Clear)
{
    SparseMemory m;
    m.write(0x8, 7);
    m.clear();
    EXPECT_EQ(m.read(0x8), 0u);
}

TEST(RegisterFile, ZeroRegisterSemantics)
{
    RegisterFile rf;
    rf.write(intReg(31), 99);
    EXPECT_EQ(rf.read(intReg(31)), 0u);
    rf.write(fpReg(31), 99);
    EXPECT_EQ(rf.read(fpReg(31)), 0u);
    rf.write(kNoReg, 5); // must not crash
    EXPECT_EQ(rf.read(kNoReg), 0u);
}

TEST(RegisterFile, IntFpSeparate)
{
    RegisterFile rf;
    rf.write(intReg(4), 10);
    rf.write(fpReg(4), 20);
    EXPECT_EQ(rf.read(intReg(4)), 10u);
    EXPECT_EQ(rf.read(fpReg(4)), 20u);
}

TEST(ProgramBuilder, LabelsResolveForward)
{
    ProgramBuilder b;
    b.br("end").nop().label("end").halt();
    const Program p = b.build();
    EXPECT_EQ(p.at(0).target, 2);
    EXPECT_EQ(p.labelIndex("end"), 2u);
}

TEST(ProgramBuilder, UndefinedLabelFatal)
{
    ProgramBuilder b;
    b.br("nowhere");
    EXPECT_EXIT(b.build(), ::testing::ExitedWithCode(1), "undefined");
}

TEST(ProgramBuilder, DuplicateLabelFatal)
{
    ProgramBuilder b;
    b.label("x");
    EXPECT_EXIT(b.label("x"), ::testing::ExitedWithCode(1), "duplicate");
}

TEST(Program, ClassHistogram)
{
    ProgramBuilder b;
    b.addq(1, 2, 3).divt(1, 2, 3).ldq(4, 5, 0).halt();
    const auto hist = b.build().classHistogram();
    EXPECT_EQ(hist[static_cast<size_t>(OpClass::IntAlu)], 1u);
    EXPECT_EQ(hist[static_cast<size_t>(OpClass::FpDiv)], 1u);
    EXPECT_EQ(hist[static_cast<size_t>(OpClass::Load)], 1u);
    EXPECT_EQ(hist[static_cast<size_t>(OpClass::Nop)], 1u);
}

TEST(Program, DisassembleMentionsMnemonics)
{
    ProgramBuilder b;
    b.ldq(1, 2, 16).stq(3, 4, -8).beq(5, "top").label("top").halt();
    const std::string d = b.build().disassemble();
    EXPECT_NE(d.find("ldq"), std::string::npos);
    EXPECT_NE(d.find("stq"), std::string::npos);
    EXPECT_NE(d.find("beq"), std::string::npos);
}

Program
arithProgram()
{
    ProgramBuilder b;
    b.ldiq(1, 6)
        .ldiq(2, 7)
        .mulq(3, 1, 2)   // r3 = 42
        .addq(4, 3, 2)   // r4 = 49
        .subq(5, 4, 1)   // r5 = 43
        .divq(6, 3, 2)   // r6 = 6
        .halt();
    return b.build();
}

TEST(Executor, IntegerArithmetic)
{
    const Program p = arithProgram();
    Executor ex(p);
    while (!ex.halted())
        ex.step();
    EXPECT_EQ(ex.regs().read(intReg(3)), 42u);
    EXPECT_EQ(ex.regs().read(intReg(4)), 49u);
    EXPECT_EQ(ex.regs().read(intReg(5)), 43u);
    EXPECT_EQ(ex.regs().read(intReg(6)), 6u);
}

TEST(Executor, LogicalAndShifts)
{
    ProgramBuilder b;
    b.ldiq(1, 0b1100)
        .ldiq(2, 0b1010)
        .and_(3, 1, 2)
        .bis(4, 1, 2)
        .xor_(5, 1, 2)
        .ldiq(6, 2)
        .sll(7, 1, 6)
        .srl(8, 1, 6)
        .halt();
    Executor ex(b.build());
    while (!ex.halted())
        ex.step();
    EXPECT_EQ(ex.regs().read(intReg(3)), 0b1000u);
    EXPECT_EQ(ex.regs().read(intReg(4)), 0b1110u);
    EXPECT_EQ(ex.regs().read(intReg(5)), 0b0110u);
    EXPECT_EQ(ex.regs().read(intReg(7)), 0b110000u);
    EXPECT_EQ(ex.regs().read(intReg(8)), 0b11u);
}

TEST(Executor, Comparisons)
{
    ProgramBuilder b;
    b.ldiq(1, 5)
        .ldiq(2, 5)
        .ldiq(3, -1)
        .cmpeq(4, 1, 2)
        .cmplt(5, 3, 1)
        .cmplt(6, 1, 3)
        .halt();
    Executor ex(b.build());
    while (!ex.halted())
        ex.step();
    EXPECT_EQ(ex.regs().read(intReg(4)), 1u);
    EXPECT_EQ(ex.regs().read(intReg(5)), 1u);
    EXPECT_EQ(ex.regs().read(intReg(6)), 0u);
}

TEST(Executor, CmovneBothWays)
{
    ProgramBuilder b;
    b.ldiq(1, 1)       // cond true
        .ldiq(2, 77)
        .ldiq(3, 5)
        .cmovne(3, 1, 2) // r3 = 77
        .ldiq(4, 0)      // cond false
        .ldiq(5, 33)
        .cmovne(5, 4, 2) // r5 stays 33
        .halt();
    Executor ex(b.build());
    while (!ex.halted())
        ex.step();
    EXPECT_EQ(ex.regs().read(intReg(3)), 77u);
    EXPECT_EQ(ex.regs().read(intReg(5)), 33u);
}

TEST(Executor, DivideByZeroYieldsZero)
{
    ProgramBuilder b;
    b.ldiq(1, 10).divq(2, 1, 31).halt();
    Executor ex(b.build());
    while (!ex.halted())
        ex.step();
    EXPECT_EQ(ex.regs().read(intReg(2)), 0u);
}

TEST(Executor, FloatingPoint)
{
    ProgramBuilder b;
    b.ldit(1, 1.5)
        .ldit(2, 2.0)
        .addt(3, 1, 2)
        .subt(4, 1, 2)
        .mult(5, 1, 2)
        .divt(6, 1, 2)
        .halt();
    Executor ex(b.build());
    while (!ex.halted())
        ex.step();
    EXPECT_DOUBLE_EQ(ex.regs().readDouble(fpReg(3)), 3.5);
    EXPECT_DOUBLE_EQ(ex.regs().readDouble(fpReg(4)), -0.5);
    EXPECT_DOUBLE_EQ(ex.regs().readDouble(fpReg(5)), 3.0);
    EXPECT_DOUBLE_EQ(ex.regs().readDouble(fpReg(6)), 0.75);
}

TEST(Executor, Cvtqt)
{
    ProgramBuilder b;
    b.ldiq(1, -3).cvtqt(2, 1).halt();
    Executor ex(b.build());
    while (!ex.halted())
        ex.step();
    EXPECT_DOUBLE_EQ(ex.regs().readDouble(fpReg(2)), -3.0);
}

TEST(Executor, LoadStoreRoundTrip)
{
    ProgramBuilder b;
    b.ldiq(1, 0x1000)
        .ldiq(2, 1234)
        .stq(2, 1, 8)    // mem[0x1008] = 1234
        .ldq(3, 1, 8)    // r3 = 1234
        .ldit(4, 9.5)
        .stt(4, 1, 16)
        .ldt(5, 1, 16)
        .halt();
    Executor ex(b.build());
    ExecInfo storeInfo{};
    while (!ex.halted()) {
        const auto info = ex.step();
        if (info.si && info.si->op == Opcode::STQ)
            storeInfo = info;
    }
    EXPECT_EQ(storeInfo.effAddr, 0x1008u);
    EXPECT_EQ(ex.regs().read(intReg(3)), 1234u);
    EXPECT_DOUBLE_EQ(ex.regs().readDouble(fpReg(5)), 9.5);
    EXPECT_EQ(ex.mem().read(0x1008), 1234u);
}

TEST(Executor, LoopExecutesExactCount)
{
    // r1 = 10; do { r2++; r1--; } while (r1 != 0)
    ProgramBuilder b;
    b.ldiq(1, 10)
        .ldiq(3, 1)
        .label("top")
        .addq(2, 2, 3)
        .subq(1, 1, 3)
        .bne(1, "top")
        .halt();
    Executor ex(b.build());
    uint64_t branchTaken = 0, branchNotTaken = 0;
    while (!ex.halted()) {
        const auto info = ex.step();
        if (info.si && info.si->op == Opcode::BNE)
            (info.taken ? branchTaken : branchNotTaken)++;
    }
    EXPECT_EQ(ex.regs().read(intReg(2)), 10u);
    EXPECT_EQ(branchTaken, 9u);
    EXPECT_EQ(branchNotTaken, 1u);
}

TEST(Executor, CallAndReturn)
{
    ProgramBuilder b;
    b.call("func")       // 0
        .ldiq(2, 55)     // 1 (after return)
        .halt()          // 2
        .label("func")
        .ldiq(1, 44)     // 3
        .ret();          // 4
    Executor ex(b.build());
    while (!ex.halted())
        ex.step();
    EXPECT_EQ(ex.regs().read(intReg(1)), 44u);
    EXPECT_EQ(ex.regs().read(intReg(2)), 55u);
    EXPECT_EQ(ex.regs().read(intReg(kLinkReg)), 1u);
}

TEST(Executor, BranchOutcomes)
{
    ProgramBuilder b;
    b.ldiq(1, 0)
        .beq(1, "a")     // taken
        .halt()
        .label("a")
        .ldiq(2, -5)
        .blt(2, "b")     // taken
        .halt()
        .label("b")
        .bge(2, "c")     // not taken
        .ldiq(3, 1)
        .halt()
        .label("c")
        .halt();
    Executor ex(b.build());
    while (!ex.halted())
        ex.step();
    EXPECT_EQ(ex.regs().read(intReg(3)), 1u);
}

TEST(Executor, RunsOffEndHalts)
{
    ProgramBuilder b;
    b.nop().nop();
    Executor ex(b.build());
    ex.step();
    const auto info = ex.step();
    EXPECT_TRUE(info.halted);
    EXPECT_TRUE(ex.halted());
}

TEST(Executor, StepAfterHaltIsIdempotent)
{
    ProgramBuilder b;
    b.halt();
    Executor ex(b.build());
    ex.step();
    const uint64_t count = ex.instsExecuted();
    const auto info = ex.step();
    EXPECT_TRUE(info.halted);
    EXPECT_EQ(ex.instsExecuted(), count);
}

TEST(Executor, ResetRestartsProgram)
{
    const Program p = arithProgram();
    Executor ex(p);
    while (!ex.halted())
        ex.step();
    ex.reset();
    EXPECT_FALSE(ex.halted());
    EXPECT_EQ(ex.pc(), 0u);
    EXPECT_EQ(ex.regs().read(intReg(3)), 0u);
    while (!ex.halted())
        ex.step();
    EXPECT_EQ(ex.regs().read(intReg(3)), 42u);
}

TEST(Executor, ActivityHigherForTogglingOperands)
{
    // Alternating bit patterns (the stressmark trick) must yield a
    // higher switching factor than all-zero operands.
    ProgramBuilder quiet, noisy;
    quiet.ldiq(1, 0).ldiq(2, 0).xor_(3, 1, 2).halt();
    noisy.ldiq(1, 0x5555555555555555ll)
        .ldiq(2, static_cast<int64_t>(0xaaaaaaaaaaaaaaaaull))
        .xor_(3, 1, 2)
        .halt();

    auto xorActivity = [](const Program &p) {
        Executor ex(p);
        float act = 0.0f;
        while (!ex.halted()) {
            const auto info = ex.step();
            if (info.si && info.si->op == Opcode::XOR)
                act = info.activity;
        }
        return act;
    };
    EXPECT_GT(xorActivity(noisy.build()), xorActivity(quiet.build()) + 0.5f);
}

TEST(Executor, EffAddrUsesBaseRegister)
{
    ProgramBuilder b;
    b.ldiq(1, 0x4000).ldq(2, 1, 0x18).halt();
    Executor ex(b.build());
    ExecInfo loadInfo{};
    while (!ex.halted()) {
        const auto i = ex.step();
        if (i.si && i.si->op == Opcode::LDQ)
            loadInfo = i;
    }
    EXPECT_EQ(loadInfo.effAddr, 0x4018u);
}

} // namespace
