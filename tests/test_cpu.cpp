/**
 * @file
 * Unit and integration tests for src/cpu: caches, branch prediction,
 * functional units, and the out-of-order pipeline (IPC sanity,
 * dependence stalls, memory behaviour, gating semantics).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "cpu/branch_pred.hpp"
#include "cpu/cache.hpp"
#include "cpu/core.hpp"
#include "cpu/func_units.hpp"
#include "isa/program.hpp"

namespace {

using namespace vguard::cpu;
using namespace vguard::isa;

// ---------------------------------------------------------------- cache

TEST(Cache, HitAfterFill)
{
    Cache c("t", CacheConfig{1024, 2, 64, 1});
    EXPECT_FALSE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x13f, false).hit); // same line
    EXPECT_FALSE(c.access(0x140, false).hit); // next line
}

TEST(Cache, LruEviction)
{
    // 2 ways, 8 sets, 64B lines: three lines mapping to set 0.
    Cache c("t", CacheConfig{1024, 2, 64, 1});
    const uint64_t a = 0x0, b = 0x400, d = 0x800; // set 0 aliases
    c.access(a, false);
    c.access(b, false);
    c.access(a, false);     // a is MRU
    c.access(d, false);     // evicts b (LRU)
    EXPECT_TRUE(c.access(a, false).hit);
    EXPECT_FALSE(c.access(b, false).hit);
}

TEST(Cache, DirtyWriteback)
{
    Cache c("t", CacheConfig{1024, 2, 64, 1});
    c.access(0x0, true);    // dirty
    c.access(0x400, false);
    const auto res = c.access(0x800, false); // evicts dirty 0x0
    EXPECT_TRUE(res.evictedDirty);
    EXPECT_EQ(res.evictedAddr, 0x0u);
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionNoWriteback)
{
    Cache c("t", CacheConfig{1024, 2, 64, 1});
    c.access(0x0, false);
    c.access(0x400, false);
    const auto res = c.access(0x800, false);
    EXPECT_FALSE(res.evictedDirty);
}

TEST(Cache, StatsCount)
{
    Cache c("t", CacheConfig{1024, 2, 64, 1});
    c.access(0x0, false);
    c.access(0x0, false);
    c.access(0x40, false);
    EXPECT_EQ(c.stats().accesses, 3u);
    EXPECT_EQ(c.stats().misses, 2u);
    EXPECT_NEAR(c.stats().missRate(), 2.0 / 3.0, 1e-12);
}

TEST(Cache, FlushInvalidates)
{
    Cache c("t", CacheConfig{1024, 2, 64, 1});
    c.access(0x0, false);
    c.flush();
    EXPECT_FALSE(c.access(0x0, false).hit);
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_EXIT(Cache("bad", CacheConfig{1000, 3, 60, 1}),
                ::testing::ExitedWithCode(1), "");
}

TEST(MemHierarchy, LatencyChain)
{
    CpuConfig cfg;
    MemHierarchy mh(cfg);
    ActivityVector av;
    // Cold: L1 miss + L2 miss + memory.
    const unsigned cold = mh.dataAccess(0x1000, false, av);
    EXPECT_EQ(cold, cfg.dl1.latency + cfg.l2.latency + cfg.memLatency);
    // Warm L1.
    const unsigned hot = mh.dataAccess(0x1000, false, av);
    EXPECT_EQ(hot, cfg.dl1.latency);
    EXPECT_EQ(av.dcacheAccesses, 2u);
    EXPECT_EQ(av.dcacheMisses, 1u);
    EXPECT_EQ(av.l2Accesses, 1u);
    EXPECT_EQ(av.l2Misses, 1u);
}

TEST(MemHierarchy, L2HitFasterThanMemory)
{
    CpuConfig cfg;
    cfg.dl1.sizeBytes = 1024; // tiny L1 so we can evict easily
    MemHierarchy mh(cfg);
    ActivityVector av;
    mh.dataAccess(0x0, false, av); // cold fill into L1+L2
    // Evict 0x0 from L1 by touching its aliases.
    mh.dataAccess(0x400, false, av);
    mh.dataAccess(0x800, false, av);
    const unsigned lat = mh.dataAccess(0x0, false, av); // L2 hit
    EXPECT_EQ(lat, cfg.dl1.latency + cfg.l2.latency);
}

TEST(MemHierarchy, IfetchUsesIl1)
{
    CpuConfig cfg;
    MemHierarchy mh(cfg);
    ActivityVector av;
    mh.ifetch(cfg.codeBase, av);
    EXPECT_EQ(av.icacheAccesses, 1u);
    EXPECT_EQ(av.icacheMisses, 1u);
    av = ActivityVector{};
    mh.ifetch(cfg.codeBase + 4, av);
    EXPECT_EQ(av.icacheMisses, 0u);
}

// ----------------------------------------------------------- predictor

TEST(Bpred, LearnsAlwaysTaken)
{
    CpuConfig cfg;
    BranchPredictor bp(cfg);
    StaticInst si{Opcode::BNE, kNoReg, intReg(1), kNoReg, 0, 5};
    // Train.
    for (int i = 0; i < 8; ++i)
        bp.predictAndUpdate(10, si, true, 5);
    const auto pred = bp.predictAndUpdate(10, si, true, 5);
    EXPECT_TRUE(pred.taken);
    EXPECT_TRUE(pred.targetKnown);
    EXPECT_EQ(pred.target, 5u);
}

TEST(Bpred, LearnsAlwaysNotTaken)
{
    CpuConfig cfg;
    BranchPredictor bp(cfg);
    StaticInst si{Opcode::BEQ, kNoReg, intReg(1), kNoReg, 0, 5};
    for (int i = 0; i < 8; ++i)
        bp.predictAndUpdate(10, si, false, 5);
    EXPECT_FALSE(bp.predictAndUpdate(10, si, false, 5).taken);
}

TEST(Bpred, GshareLearnsAlternating)
{
    // A strictly alternating branch is mispredicted by bimodal but
    // learned by gshare through history; the chooser should converge
    // on gshare and the tail mispredict rate should collapse.
    CpuConfig cfg;
    BranchPredictor bp(cfg);
    StaticInst si{Opcode::BNE, kNoReg, intReg(1), kNoReg, 0, 7};
    bool taken = false;
    for (int i = 0; i < 4000; ++i) {
        bp.predictAndUpdate(42, si, taken, 7);
        taken = !taken;
    }
    const auto before = bp.stats().condMispredicts;
    for (int i = 0; i < 1000; ++i) {
        bp.predictAndUpdate(42, si, taken, 7);
        taken = !taken;
    }
    const auto tail = bp.stats().condMispredicts - before;
    EXPECT_LT(tail, 50u); // < 5 % in the trained regime
}

TEST(Bpred, UnconditionalAlwaysRight)
{
    CpuConfig cfg;
    BranchPredictor bp(cfg);
    StaticInst si{Opcode::BR, kNoReg, kNoReg, kNoReg, 0, 3};
    const auto pred = bp.predictAndUpdate(0, si, true, 3);
    EXPECT_TRUE(pred.taken);
    EXPECT_TRUE(pred.targetKnown);
    EXPECT_EQ(pred.target, 3u);
}

TEST(Bpred, RasPredictsReturn)
{
    CpuConfig cfg;
    BranchPredictor bp(cfg);
    StaticInst call{Opcode::CALL, intReg(kLinkReg), kNoReg, kNoReg, 0, 9};
    StaticInst ret{Opcode::RET, kNoReg, intReg(kLinkReg), kNoReg, 0, -1};
    bp.predictAndUpdate(4, call, true, 9);
    const auto pred = bp.predictAndUpdate(12, ret, true, 5);
    EXPECT_TRUE(pred.targetKnown);
    EXPECT_EQ(pred.target, 5u); // pc of call + 1
    EXPECT_EQ(bp.stats().rasMispredicts, 0u);
}

TEST(Bpred, RasUnderflowCountsMispredict)
{
    CpuConfig cfg;
    BranchPredictor bp(cfg);
    StaticInst ret{Opcode::RET, kNoReg, intReg(kLinkReg), kNoReg, 0, -1};
    bp.predictAndUpdate(12, ret, true, 5);
    EXPECT_EQ(bp.stats().rasMispredicts, 1u);
}

TEST(Bpred, NestedCallsLifo)
{
    CpuConfig cfg;
    BranchPredictor bp(cfg);
    StaticInst call{Opcode::CALL, intReg(kLinkReg), kNoReg, kNoReg, 0, 0};
    StaticInst ret{Opcode::RET, kNoReg, intReg(kLinkReg), kNoReg, 0, -1};
    bp.predictAndUpdate(10, call, true, 100);
    bp.predictAndUpdate(100, call, true, 200);
    EXPECT_EQ(bp.predictAndUpdate(210, ret, true, 101).target, 101u);
    EXPECT_EQ(bp.predictAndUpdate(101, ret, true, 11).target, 11u);
}

// ------------------------------------------------------------ FU pool

TEST(FuPool, CapacityLimits)
{
    CpuConfig cfg;
    FuncUnitPool pool(cfg);
    for (unsigned i = 0; i < cfg.numIntAlu; ++i)
        EXPECT_TRUE(pool.tryIssue(OpClass::IntAlu, 0));
    EXPECT_FALSE(pool.tryIssue(OpClass::IntAlu, 0));
    EXPECT_TRUE(pool.tryIssue(OpClass::IntAlu, 1)); // freed next cycle
}

TEST(FuPool, UnpipelinedDivBlocks)
{
    CpuConfig cfg;
    FuncUnitPool pool(cfg);
    EXPECT_TRUE(pool.tryIssue(OpClass::IntDiv, 0));
    EXPECT_TRUE(pool.tryIssue(OpClass::IntDiv, 0)); // 2 units
    EXPECT_FALSE(pool.tryIssue(OpClass::IntDiv, 0));
    EXPECT_FALSE(pool.tryIssue(OpClass::IntDiv, 5));
    EXPECT_TRUE(pool.tryIssue(OpClass::IntDiv, cfg.intDivRepeat));
}

TEST(FuPool, MultAndDivShareUnits)
{
    CpuConfig cfg;
    FuncUnitPool pool(cfg);
    EXPECT_TRUE(pool.tryIssue(OpClass::IntDiv, 0));
    EXPECT_TRUE(pool.tryIssue(OpClass::IntMult, 0));
    EXPECT_FALSE(pool.tryIssue(OpClass::IntMult, 0));
}

TEST(FuPool, BusyCountTracksOccupancy)
{
    CpuConfig cfg;
    FuncUnitPool pool(cfg);
    pool.tryIssue(OpClass::FpDiv, 0);
    EXPECT_EQ(pool.busyCount(FuGroup::FpMultDiv, 0), 1u);
    EXPECT_EQ(pool.busyCount(FuGroup::FpMultDiv, cfg.fpDivRepeat), 0u);
}

TEST(FuPool, BranchesUseIntAlu)
{
    EXPECT_EQ(fuGroupOf(OpClass::Branch), FuGroup::IntAlu);
    EXPECT_EQ(fuGroupOf(OpClass::Load), FuGroup::MemPort);
}

// ----------------------------------------------------------- pipeline

// Run a core until it halts (bounded) and return stats.
CoreStats
runToHalt(OoOCore &core, uint64_t maxCycles = 2'000'000)
{
    while (!core.halted() && core.now() < maxCycles)
        core.cycle();
    EXPECT_TRUE(core.halted()) << "core did not drain";
    return core.stats();
}

// Looped blocks so the I-cache warms up after the first iteration
// (straight-line megaprograms would measure cold I-misses instead of
// pipeline behaviour).
Program
independentAdds(int iters, int blockLen = 40)
{
    ProgramBuilder b;
    b.ldiq(1, 1).ldiq(2, 2).ldiq(9, iters);
    b.label("top");
    for (int i = 0; i < blockLen; ++i)
        b.addq(10 + (i % 16), 1, 2);
    b.subq(9, 9, 1).bne(9, "top").halt();
    return b.build();
}

Program
dependentChain(int iters, int blockLen = 40)
{
    ProgramBuilder b;
    b.ldiq(1, 1).ldiq(2, 0).ldiq(9, iters);
    b.label("top");
    for (int i = 0; i < blockLen; ++i)
        b.addq(2, 2, 1); // serial chain
    b.subq(9, 9, 1).bne(9, "top").halt();
    return b.build();
}

TEST(Core, CommitsEverything)
{
    OoOCore core(CpuConfig{}, independentAdds(5));
    const auto s = runToHalt(core);
    EXPECT_EQ(s.committed, 3u + 5u * 42u + 1u);
    EXPECT_EQ(s.dispatched, s.committed);
}

TEST(Core, IndependentOpsSuperscalar)
{
    OoOCore core(CpuConfig{}, independentAdds(200));
    const auto s = runToHalt(core);
    // 8-wide with 8 IntALUs should sustain well above 3 IPC on
    // independent adds once the I-cache is warm.
    EXPECT_GT(s.ipc(), 3.0);
}

TEST(Core, DependentChainSerialises)
{
    OoOCore core(CpuConfig{}, dependentChain(200));
    const auto s = runToHalt(core);
    // One add per cycle at best.
    EXPECT_LT(s.ipc(), 1.3);
    EXPECT_GT(s.ipc(), 0.7);
}

TEST(Core, DependentFasterThanDivChain)
{
    OoOCore addCore(CpuConfig{}, dependentChain(100));
    ProgramBuilder b;
    b.ldiq(1, 100).ldiq(2, 3).ldiq(9, 100).ldiq(8, 1);
    b.label("top");
    for (int i = 0; i < 40; ++i)
        b.divq(1, 1, 2);
    b.subq(9, 9, 8).bne(9, "top").halt();
    OoOCore divCore(CpuConfig{}, b.build());
    const auto sAdd = runToHalt(addCore);
    const auto sDiv = runToHalt(divCore);
    // Unpipelined 20-cycle divides must be far slower.
    EXPECT_GT(sAdd.ipc(), 8.0 * sDiv.ipc());
}

TEST(Core, LoadStoreForwarding)
{
    // store then immediately load the same address: must forward.
    ProgramBuilder b;
    b.ldiq(1, 0x1000).ldiq(2, 42);
    for (int i = 0; i < 100; ++i) {
        b.stq(2, 1, 0);
        b.ldq(3, 1, 0);
    }
    b.halt();
    OoOCore core(CpuConfig{}, b.build());
    const auto s = runToHalt(core);
    EXPECT_GT(s.lsqForwards, 50u);
    EXPECT_EQ(s.loads, 100u);
    EXPECT_EQ(s.stores, 100u);
}

TEST(Core, PointerChaseSerialisesMisses)
{
    // Build a linked chain whose footprint exceeds the 2 MB L2, then
    // chase it: each load's address depends on the previous load, so
    // the ~300-cycle memory misses serialise.
    constexpr int kNodes = 600;
    constexpr int64_t kStride = 8384;  // 131 lines; spreads L2 sets
    constexpr int64_t kBase = 0x1000000;
    ProgramBuilder b;
    b.ldiq(1, kBase).ldiq(2, kStride).ldiq(9, kNodes).ldiq(8, 1);
    // Write the chain: node i holds the address of node i+1.
    b.label("mk")
        .addq(3, 1, 2)   // next = cur + stride
        .stq(3, 1, 0)
        .bis(1, 3, 31)   // cur = next
        .subq(9, 9, 8)
        .bne(9, "mk");
    // Chase it (cold again after > L2-size of stores? the stores also
    // left the early lines evicted by the later ones).
    b.ldiq(1, kBase).ldiq(9, kNodes);
    b.label("chase").ldq(1, 1, 0).subq(9, 9, 8).bne(9, "chase").halt();
    // Shrink the caches so the 600-node chain exceeds both levels.
    CpuConfig cfg;
    cfg.dl1.sizeBytes = 8 * 1024;
    cfg.l2.sizeBytes = 32 * 1024;
    OoOCore core(cfg, b.build());
    const auto s = runToHalt(core);
    EXPECT_GT(core.mem().dl1().stats().misses,
              static_cast<uint64_t>(kNodes)); // store pass + chase pass
    // Serial chain of mostly-memory misses dominates runtime.
    EXPECT_GT(s.cycles, kNodes * 100u);
}

TEST(Core, BranchMispredictsCostCycles)
{
    // Data-dependent unpredictable branches (pseudo-random via LCG
    // arithmetic) vs perfectly-biased branches of the same count.
    auto loop = [](bool random) {
        ProgramBuilder b;
        b.ldiq(1, 12345)   // lcg state
            .ldiq(2, 1103515245)
            .ldiq(3, 12345)
            .ldiq(4, 512)   // iterations
            .ldiq(5, 1)
            .ldiq(7, 0x10000);
        b.label("top");
        if (random) {
            b.ldiq(9, 33)
                .mulq(1, 1, 2)
                .addq(1, 1, 3)
                .srl(6, 1, 9)       // high LCG bit: unpredictable
                .and_(6, 6, 5)
                .beq(6, "skip")
                .addq(8, 8, 5)
                .label("skip");
        } else {
            b.addq(8, 8, 5).beq(31, "skip").label("skip");
        }
        b.subq(4, 4, 5).bne(4, "top").halt();
        return b.build();
    };
    OoOCore biased(CpuConfig{}, loop(false));
    OoOCore random(CpuConfig{}, loop(true));
    const auto sb = runToHalt(biased);
    const auto sr = runToHalt(random);
    EXPECT_GT(sr.mispredicts, 100u);
    EXPECT_LT(sb.mispredicts, 30u);
    EXPECT_LT(sb.cycles, sr.cycles);
}

TEST(Core, PredictableLoopLowMispredicts)
{
    ProgramBuilder b;
    b.ldiq(1, 2000).ldiq(2, 1);
    b.label("top").subq(1, 1, 2).bne(1, "top").halt();
    OoOCore core(CpuConfig{}, b.build());
    const auto s = runToHalt(core);
    EXPECT_EQ(s.branches, 2000u);
    EXPECT_LT(s.mispredicts, 40u);
}

TEST(Core, GatingFuStallsIssueButPreservesCorrectness)
{
    CpuConfig cfg;
    OoOCore gated(cfg, independentAdds(500));
    OoOCore free(cfg, independentAdds(500));
    // Gate FUs every other 10-cycle window.
    while (!gated.halted() && gated.now() < 100000) {
        gated.setGates({(gated.now() / 10) % 2 == 0, false, false});
        gated.cycle();
    }
    const auto sg = gated.stats();
    const auto sf = runToHalt(free);
    EXPECT_TRUE(gated.halted());
    EXPECT_EQ(sg.committed, sf.committed); // nothing dropped
    EXPECT_GT(sg.cycles, sf.cycles);       // but it cost time
    EXPECT_GT(sg.issueGateStalls, 0u);
}

TEST(Core, GatingIl1StopsFetch)
{
    CpuConfig cfg;
    OoOCore core(cfg, independentAdds(2, 10));
    core.setGates({false, false, true});
    for (int i = 0; i < 50; ++i)
        core.cycle();
    EXPECT_EQ(core.stats().fetched, 0u);
    // Releasing the gate lets the program finish.
    core.setGates({});
    runToHalt(core);
    EXPECT_EQ(core.stats().committed, 3u + 2u * 12u + 1u);
}

TEST(Core, GatingDl1StallsLoads)
{
    ProgramBuilder b;
    b.ldiq(1, 0x2000);
    for (int i = 0; i < 20; ++i)
        b.ldq(2, 1, 8 * i);
    b.halt();
    CpuConfig cfg;
    OoOCore core(cfg, b.build());
    core.setGates({false, true, false});
    for (int i = 0; i < 200; ++i)
        core.cycle();
    EXPECT_EQ(core.mem().dl1().stats().accesses, 0u);
    core.setGates({});
    runToHalt(core);
    EXPECT_EQ(core.stats().loads, 20u);
}

TEST(Core, PhantomDoesNotChangeTiming)
{
    CpuConfig cfg;
    OoOCore plain(cfg, independentAdds(1000));
    OoOCore phantom(cfg, independentAdds(1000));
    phantom.setPhantom({true, true, true});
    const auto sp = runToHalt(plain);
    const auto sh = runToHalt(phantom);
    EXPECT_EQ(sp.cycles, sh.cycles);
    EXPECT_EQ(sp.committed, sh.committed);
}

TEST(Core, ActivityVectorPopulated)
{
    CpuConfig cfg;
    OoOCore core(cfg, independentAdds(500));
    uint64_t fetched = 0, issued = 0, committed = 0;
    while (!core.halted() && core.now() < 10000) {
        const auto &av = core.cycle();
        fetched += av.fetched;
        issued += av.issuedIntAlu + av.issuedIntMult + av.issuedIntDiv +
                  av.issuedFpAdd + av.issuedFpMult + av.issuedFpDiv;
        committed += av.committed;
    }
    EXPECT_EQ(fetched, core.stats().fetched);
    EXPECT_EQ(committed, core.stats().committed);
    EXPECT_GT(issued, 0u);
}

TEST(Core, HaltedStaysHalted)
{
    OoOCore core(CpuConfig{}, independentAdds(10));
    runToHalt(core);
    const auto committed = core.stats().committed;
    core.cycle();
    core.cycle();
    EXPECT_TRUE(core.halted());
    EXPECT_EQ(core.stats().committed, committed);
}

TEST(Core, RuuNeverExceedsCapacity)
{
    CpuConfig cfg;
    cfg.ruuSize = 16;
    cfg.lsqSize = 8;
    OoOCore core(cfg, independentAdds(2000));
    while (!core.halted() && core.now() < 100000) {
        const auto &av = core.cycle();
        EXPECT_LE(av.ruuOccupancy, cfg.ruuSize);
        EXPECT_LE(av.lsqOccupancy, cfg.lsqSize);
    }
    EXPECT_TRUE(core.halted());
}

TEST(Core, MemoryDependenceOrdering)
{
    // Store then dependent load through a different register path —
    // the load must see the stored value architecturally (checked by
    // the executor) and the pipeline must not deadlock.
    ProgramBuilder b;
    b.ldiq(1, 0x3000)
        .ldiq(2, 7)
        .stq(2, 1, 0)
        .ldq(3, 1, 0)
        .addq(4, 3, 2) // r4 = 14
        .halt();
    OoOCore core(CpuConfig{}, b.build());
    runToHalt(core);
    EXPECT_EQ(core.stats().committed, 6u);
}

} // namespace
