/**
 * @file
 * Tests for the sweep service (svc/sweepd): a campaign shipped to an
 * in-process SweepServer over its Unix socket must reproduce the local
 * CampaignEngine's artifacts byte for byte — at any client-requested
 * worker count, including comparison jobs, emergency events and the
 * merged stats — and the daemon must honour its own default thread
 * count when the request leaves threads unset.
 *
 * Labeled `campaign` so the suite runs under TSan with the rest of
 * the campaign concurrency tests.
 */

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/experiments.hpp"
#include "svc/sweepd.hpp"
#include "workloads/spec_proxy.hpp"

namespace {

namespace fs = std::filesystem;
using namespace vguard;
using namespace vguard::core;

/** Short unique socket path (sun_path is ~108 bytes). */
std::string
socketPathFor(const char *tag)
{
    return (fs::temp_directory_path() /
            (std::string("vg-sweepd-") + tag + "-" +
             std::to_string(::getpid()) + ".sock"))
        .string();
}

/**
 * A mixed mini-campaign: open-loop legs that share trace-cache keys
 * across packages, a convolution leg, a closed-loop leg, and one
 * comparison job (the full wire shape: baseline + controlled).
 */
std::vector<CampaignJob>
mixedJobs()
{
    std::vector<CampaignJob> jobs;
    for (double scale : {1.5, 2.5}) {
        RunSpec rs;
        rs.impedanceScale = scale;
        rs.controllerEnabled = false;
        rs.maxCycles = 1409; // key unique to this suite
        jobs.push_back({"gzip-open-s" + std::to_string(scale),
                        workloads::buildSpecProxy("gzip"), rs, false});
    }
    RunSpec conv;
    conv.controllerEnabled = false;
    conv.useConvolution = true;
    conv.maxCycles = 1409;
    jobs.push_back({"swim-conv", workloads::buildSpecProxy("swim"),
                    conv, false});
    RunSpec ctl;
    ctl.controllerEnabled = true;
    ctl.delayCycles = 2;
    ctl.sensorError = 0.004;
    ctl.maxCycles = 1409;
    jobs.push_back({"gzip-ctl", workloads::buildSpecProxy("gzip"), ctl,
                    false});
    RunSpec cmp = ctl;
    cmp.actuator = ActuatorKind::FuDl1;
    jobs.push_back({"mcf-compare", workloads::buildSpecProxy("mcf"),
                    cmp, true});
    return jobs;
}

TEST(SweepService, ByteIdenticalToLocalAtAnyWorkerCount)
{
    CampaignEngine::Options base;
    base.campaignSeed = 0x5eedb0a7;

    CampaignEngine::Options localOpts = base;
    localOpts.threads = 2;
    const CampaignResult local =
        CampaignEngine(localOpts).run(mixedJobs());
    ASSERT_EQ(local.runs.size(), mixedJobs().size());

    const std::string sock = socketPathFor("ident");
    svc::SweepServer server(sock);
    server.start();

    for (unsigned threads : {1u, 2u, 8u}) {
        CampaignEngine::Options o = base;
        o.threads = threads;
        o.serverSocket = sock;
        const CampaignResult remote =
            CampaignEngine(o).run(mixedJobs());

        EXPECT_EQ(remote.jsonl(), local.jsonl())
            << "threads=" << threads;
        EXPECT_EQ(remote.mergedStats.json(), local.mergedStats.json())
            << "threads=" << threads;
        EXPECT_EQ(remote.eventsJsonl(), local.eventsJsonl())
            << "threads=" << threads;
        EXPECT_EQ(remote.campaignSeed, local.campaignSeed);
        // The engine caps workers at the job count on the daemon too.
        EXPECT_EQ(remote.threadsUsed,
                  std::min<unsigned>(threads, local.runs.size()));

        // The comparison job's baseline must survive the wire intact.
        const RunResult &rr = remote.runs.back();
        ASSERT_TRUE(rr.comparison.has_value());
        const RunResult &lr = local.runs.back();
        EXPECT_EQ(rr.comparison->baseline.energyJ,
                  lr.comparison->baseline.energyJ);
        EXPECT_EQ(rr.comparison->baseline.stats.json(),
                  lr.comparison->baseline.stats.json());
        EXPECT_EQ(rr.comparison->perfLossPct,
                  lr.comparison->perfLossPct);
        EXPECT_EQ(rr.comparison->energyIncreasePct,
                  lr.comparison->energyIncreasePct);
    }
    EXPECT_EQ(server.campaignsServed(), 3u);

    server.stop();
    EXPECT_FALSE(fs::exists(sock)) << "stop() must unlink the socket";
}

TEST(SweepService, ServerDefaultThreadsWhenRequestLeavesThemUnset)
{
    CampaignEngine::Options serverDefaults;
    serverDefaults.threads = 3;
    const std::string sock = socketPathFor("threads");
    svc::SweepServer server(sock, serverDefaults);
    server.start();

    CampaignEngine::Options o;
    o.serverSocket = sock;
    o.threads = 0; // daemon's choice
    const CampaignResult res = CampaignEngine(o).run(mixedJobs());
    EXPECT_EQ(res.threadsUsed, 3u)
        << "threads=0 must defer to the daemon's default";

    server.stop();
}

TEST(SweepService, ServesCampaignsBackToBackOnOneSocket)
{
    const std::string sock = socketPathFor("serial");
    svc::SweepServer server(sock);
    server.start();

    CampaignEngine::Options o;
    o.serverSocket = sock;
    o.threads = 2;
    const CampaignResult first = CampaignEngine(o).run(mixedJobs());
    const CampaignResult second = CampaignEngine(o).run(mixedJobs());
    EXPECT_EQ(first.jsonl(), second.jsonl());
    EXPECT_EQ(server.campaignsServed(), 2u);

    server.stop();
}

} // namespace
