/**
 * @file
 * Unit tests for the runtime-sized small-matrix toolkit (MatN) and the
 * N-state ZOH discretisation used by the third-order PDN model.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "linsys/matn.hpp"

namespace {

using namespace vguard::linsys;

MatN
fromRows(const std::vector<std::vector<double>> &rows)
{
    MatN m(static_cast<unsigned>(rows.size()));
    for (unsigned i = 0; i < m.size(); ++i)
        for (unsigned j = 0; j < m.size(); ++j)
            m.at(i, j) = rows[i][j];
    return m;
}

TEST(MatN, IdentityAndAccess)
{
    const MatN id = MatN::identity(3);
    EXPECT_DOUBLE_EQ(id.at(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(id.at(1, 2), 0.0);
    EXPECT_EQ(id.size(), 3u);
}

TEST(MatN, Arithmetic)
{
    const MatN a = fromRows({{1, 2}, {3, 4}});
    const MatN b = fromRows({{5, 6}, {7, 8}});
    const MatN sum = a + b;
    EXPECT_DOUBLE_EQ(sum.at(0, 0), 6.0);
    const MatN prod = a * b;
    EXPECT_DOUBLE_EQ(prod.at(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(prod.at(1, 1), 50.0);
    const MatN scaled = a * 2.0;
    EXPECT_DOUBLE_EQ(scaled.at(1, 0), 6.0);
    const MatN diff = b - a;
    EXPECT_DOUBLE_EQ(diff.at(0, 1), 4.0);
}

TEST(MatN, Apply)
{
    const MatN a = fromRows({{1, 2}, {3, 4}});
    const auto y = a.apply({1.0, -1.0});
    EXPECT_DOUBLE_EQ(y[0], -1.0);
    EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(MatN, InverseRoundTrip3x3)
{
    const MatN a = fromRows({{2, 1, 0}, {1, 3, 1}, {0, 1, 4}});
    const MatN id = a * a.inverse();
    for (unsigned i = 0; i < 3; ++i)
        for (unsigned j = 0; j < 3; ++j)
            EXPECT_NEAR(id.at(i, j), i == j ? 1.0 : 0.0, 1e-12);
}

TEST(MatN, InverseNeedsPivoting)
{
    // Zero on the diagonal forces a row swap.
    const MatN a = fromRows({{0, 1}, {1, 0}});
    const MatN inv = a.inverse();
    EXPECT_DOUBLE_EQ(inv.at(0, 1), 1.0);
    EXPECT_DOUBLE_EQ(inv.at(0, 0), 0.0);
}

TEST(MatN, ExpmDiagonal)
{
    const MatN m = fromRows({{1.0, 0.0}, {0.0, -2.0}});
    const MatN e = expm(m);
    EXPECT_NEAR(e.at(0, 0), std::exp(1.0), 1e-12);
    EXPECT_NEAR(e.at(1, 1), std::exp(-2.0), 1e-12);
    EXPECT_NEAR(e.at(0, 1), 0.0, 1e-13);
}

TEST(MatN, ExpmRotation3x3Block)
{
    // Rotation block + isolated decay.
    const double w = 2.0;
    const MatN m = fromRows({{0, -w, 0}, {w, 0, 0}, {0, 0, -1}});
    const MatN e = expm(m);
    EXPECT_NEAR(e.at(0, 0), std::cos(w), 1e-12);
    EXPECT_NEAR(e.at(1, 0), std::sin(w), 1e-12);
    EXPECT_NEAR(e.at(2, 2), std::exp(-1.0), 1e-12);
}

TEST(MatN, SpectralRadiusDiagonal)
{
    const MatN m = fromRows({{0.5, 0.0}, {0.0, -0.9}});
    EXPECT_NEAR(m.spectralRadiusEstimate(), 0.9, 1e-3);
}

TEST(MatN, SpectralRadiusComplexPair)
{
    // Scaled rotation: eigenvalues 0.8 e^{±i}.
    const double r = 0.8, th = 1.0;
    const MatN m = fromRows({{r * std::cos(th), -r * std::sin(th)},
                             {r * std::sin(th), r * std::cos(th)}});
    EXPECT_NEAR(m.spectralRadiusEstimate(), 0.8, 1e-3);
}

TEST(MatN, SpectralRadiusBadlyScaled)
{
    // Similar to diag(1e6, 1e-6)-conjugated contraction: the balanced
    // estimate must not blow up.
    const double r = 0.99;
    MatN m = fromRows({{r, 1e6 * 0.001}, {0.0, 0.5}});
    EXPECT_NEAR(m.spectralRadiusEstimate(), r, 1e-2);
}

TEST(MatN, RejectsBadSize)
{
    EXPECT_DEATH({ MatN m(0); (void)m; }, "");
}

StateSpaceN
doubleLag()
{
    // Two cascaded unit lags driven by a single input:
    //   x0' = -x0 + u, x1' = -x1 + x0, y = x1.
    StateSpaceN ss(2, 1);
    ss.a.at(0, 0) = -1.0;
    ss.a.at(1, 0) = 1.0;
    ss.a.at(1, 1) = -1.0;
    ss.b[0] = 1.0;
    ss.c = {0.0, 1.0};
    ss.d = {0.0};
    return ss;
}

TEST(StateSpaceN, ZohStepConvergesToDcGain)
{
    const auto dss = DiscreteStateSpaceN::zoh(doubleLag(), 0.01);
    std::vector<double> x{0.0, 0.0};
    const std::vector<double> u{2.0};
    for (int i = 0; i < 5000; ++i)
        dss.next(x, u);
    EXPECT_NEAR(dss.output(x, u), 2.0, 1e-6); // unit DC gain * 2
}

TEST(StateSpaceN, MatchesFineEuler)
{
    const auto sys = doubleLag();
    const double dt = 0.05;
    const auto dss = DiscreteStateSpaceN::zoh(sys, dt);

    std::vector<double> x{0.3, -0.2};
    std::vector<double> fine = x;
    const std::vector<double> u{1.0};
    const int sub = 2000;
    for (int i = 0; i < sub; ++i) {
        const auto ax = sys.a.apply(fine);
        for (unsigned j = 0; j < 2; ++j)
            fine[j] += (ax[j] + sys.b[j] * u[0]) * (dt / sub);
    }
    dss.next(x, u);
    EXPECT_NEAR(x[0], fine[0], 1e-4);
    EXPECT_NEAR(x[1], fine[1], 1e-4);
}

TEST(StateSpaceN, StableEstimate)
{
    const auto dss = DiscreteStateSpaceN::zoh(doubleLag(), 0.1);
    EXPECT_LT(dss.spectralRadiusEstimate(), 1.0);
    EXPECT_GT(dss.spectralRadiusEstimate(), 0.5);
}

TEST(StateSpaceN, OutputFeedThrough)
{
    StateSpaceN ss(2, 2);
    ss.a.at(0, 0) = -1.0;
    ss.a.at(1, 1) = -1.0;
    ss.c = {0.0, 0.0};
    ss.d = {3.0, -2.0};
    const auto dss = DiscreteStateSpaceN::zoh(ss, 0.1);
    std::vector<double> x{0.0, 0.0};
    EXPECT_DOUBLE_EQ(dss.output(x, {1.0, 1.0}), 1.0);
}

} // namespace
