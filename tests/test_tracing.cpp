/**
 * @file
 * Execution-tracing layer (obs/tracing) test suite.
 *
 * Four concerns, mirroring the contract DESIGN.md §6 states:
 *
 *  1. Chrome export schema — chromeJson() must satisfy the structural
 *     contract Perfetto's legacy JSON importer relies on. Validated
 *     here by round-tripping through util/json_parse and walking
 *     every event, the same walk `vguard-report validate-trace` does
 *     in CI.
 *  2. Canonical determinism — canonicalJsonl() of a traced campaign
 *     must be byte-identical at 1, 2 and 8 worker threads (this suite
 *     carries the `campaign` label, so TSan covers the recording
 *     paths at the same time).
 *  3. Golden mini-trace — the canonical bytes of a pinned 2-run
 *     campaign are committed; instrumentation points cannot move
 *     silently. Regenerate deliberately with
 *       VGUARD_UPDATE_GOLDEN=1 ./tests/test_tracing \
 *           --gtest_filter=Golden.MiniTraceCanonical
 *  4. Mechanics — bounded rings drop (and count) instead of growing,
 *     detached spans lift to roots, args export sorted by key,
 *     disable()/resume() pause without clearing.
 */

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/experiments.hpp"
#include "core/trace_cache.hpp"
#include "obs/tracing.hpp"
#include "pdn/package_model.hpp"
#include "util/json_parse.hpp"
#include "workloads/stressmark.hpp"

using namespace vguard;
using namespace vguard::core;
using obs::TraceClass;
using obs::Tracer;
using obs::TraceSpan;

namespace {

/** Leave the process-global tracer off and empty after each test. */
class TracingTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        Tracer::instance().disable();
        Tracer::instance().reset();
    }
};

/**
 * Structural validation of a Chrome trace-event document: the same
 * contract cmdValidateTrace enforces in tools/vguard-report. Returns
 * an empty string when valid, else a description of the violation.
 */
std::string
validateChrome(const JsonValue &doc)
{
    if (!doc.isObject())
        return "top level is not an object";
    const JsonValue *events = doc.find("traceEvents");
    if (!events || !events->isArray())
        return "missing traceEvents array";
    for (size_t i = 0; i < events->items.size(); ++i) {
        const JsonValue &ev = events->items[i];
        const std::string at = "traceEvents[" + std::to_string(i) + "]: ";
        if (!ev.isObject())
            return at + "not an object";
        const JsonValue *ph = ev.find("ph");
        if (!ph || !ph->isString() || ph->str.size() != 1)
            return at + "missing one-char ph";
        const JsonValue *name = ev.find("name");
        if (!name || !name->isString() || name->str.empty())
            return at + "missing name";
        const JsonValue *pid = ev.find("pid");
        const JsonValue *tid = ev.find("tid");
        if (!pid || !pid->isNumber() || !tid || !tid->isNumber())
            return at + "missing numeric pid/tid";
        switch (ph->str[0]) {
        case 'X': {
            const JsonValue *ts = ev.find("ts");
            const JsonValue *dur = ev.find("dur");
            if (!ts || !ts->isNumber() || !dur || !dur->isNumber())
                return at + "complete event without ts/dur";
            if (dur->number < 0.0)
                return at + "negative dur";
            break;
        }
        case 'i': {
            const JsonValue *scope = ev.find("s");
            if (!ev.find("ts") || !scope || !scope->isString())
                return at + "instant without ts/scope";
            break;
        }
        case 'C': {
            const JsonValue *args = ev.find("args");
            const JsonValue *value =
                args && args->isObject() ? args->find("value")
                                         : nullptr;
            if (!value || !value->isNumber())
                return at + "counter without numeric args.value";
            break;
        }
        case 'M': {
            const JsonValue *args = ev.find("args");
            const JsonValue *tn =
                args && args->isObject() ? args->find("name")
                                         : nullptr;
            if (!tn || !tn->isString())
                return at + "metadata without args.name";
            break;
        }
        default:
            return at + "unknown ph '" + ph->str + "'";
        }
    }
    return {};
}

/**
 * The pinned traced mini-campaign: one open-loop stressmark leg and
 * one controlled leg. The threshold-solver cache is keyed on (scale,
 * delay, error) and solves once per process, so each test passes its
 * own @p sensorError — a value used nowhere else — to keep its solve
 * (and the solver.solve span) cold when the whole binary runs in one
 * process.
 */
CampaignResult
tracedMiniCampaign(int threads, double sensorError)
{
    const auto cal = workloads::StressmarkBuilder::calibrate(
        pdn::PackageModel(referencePackage(2.0)).resonantPeriodCycles(),
        referenceMachine().cpu);
    const auto stress = workloads::StressmarkBuilder::build(cal.params);

    RunSpec open;
    open.impedanceScale = 2.0;
    open.controllerEnabled = false;
    open.maxCycles = 2500;

    RunSpec controlled = open;
    controlled.controllerEnabled = true;
    controlled.delayCycles = 2;
    controlled.sensorError = sensorError;
    controlled.actuator = ActuatorKind::Ideal;

    std::vector<CampaignJob> jobs{
        {"mini-open", stress, open, false},
        {"mini-controlled-d2", stress, controlled, false},
    };
    CampaignEngine::Options o;
    o.threads = static_cast<size_t>(threads);
    o.campaignSeed = 0xbeef;
    return CampaignEngine(o).run(std::move(jobs));
}

/**
 * Canonical export of an open-loop-only campaign at @p threads
 * workers. Only process-state-independent spans fire: the trace
 * cache is cleared first (fresh capture every call) and no job needs
 * a threshold solve.
 */
std::string
canonicalAt(int threads)
{
    const auto cal = workloads::StressmarkBuilder::calibrate(
        pdn::PackageModel(referencePackage(2.0)).resonantPeriodCycles(),
        referenceMachine().cpu);
    const auto stress = workloads::StressmarkBuilder::build(cal.params);

    std::vector<CampaignJob> jobs;
    for (int i = 0; i < 6; ++i) {
        RunSpec spec;
        spec.impedanceScale = 1.0 + 0.25 * i;
        spec.controllerEnabled = false;
        spec.maxCycles = 2000;
        jobs.push_back({"sweep-" + std::to_string(i), stress, spec,
                        false});
    }

    TraceCache::instance().clear();
    Tracer::instance().enable();
    CampaignEngine::Options o;
    o.threads = static_cast<size_t>(threads);
    o.campaignSeed = 0x5eed;
    CampaignEngine(o).run(std::move(jobs));
    Tracer::instance().disable();
    const std::string canon = Tracer::instance().canonicalJsonl();
    EXPECT_EQ(Tracer::instance().stats().droppedDet, 0u)
        << "canonical form is only golden-stable with zero Det drops";
    Tracer::instance().reset();
    return canon;
}

} // namespace

// ----------------------------------------------------- chrome schema

TEST_F(TracingTest, ChromeExportSchemaRoundTrip)
{
    Tracer &t = Tracer::instance();
    t.enable();
    {
        TraceSpan outer("unit.outer");
        outer.arg("n", uint64_t{3}).arg("label", "abc");
        {
            TraceSpan inner("unit.inner", TraceClass::Wall);
            inner.arg("x", 1.5);
        }
        obs::TraceInstant("unit.instant").arg("k", uint64_t{7});
        obs::traceCounter("unit.track", 42.0);
    }
    t.disable();

    const std::string json = t.chromeJson();
    std::string err;
    JsonValue doc;
    ASSERT_TRUE(parseJson(json, doc, err)) << err;
    EXPECT_EQ(validateChrome(doc), "");

    // displayTimeUnit + drop accounting ride along for tooling.
    const JsonValue *unit = doc.find("displayTimeUnit");
    ASSERT_NE(unit, nullptr);
    EXPECT_EQ(unit->str, "ms");
    const JsonValue *other = doc.find("otherData");
    ASSERT_NE(other, nullptr);
    EXPECT_NE(other->find("dropped_det"), nullptr);
    EXPECT_NE(other->find("dropped_wall"), nullptr);

    // All four record kinds survive the round trip by name.
    const JsonValue &events = *doc.find("traceEvents");
    bool sawOuter = false, sawInner = false, sawInstant = false,
         sawCounter = false, sawThreadName = false;
    for (const JsonValue &ev : events.items) {
        const std::string &name = ev.find("name")->str;
        const char ph = ev.find("ph")->str[0];
        sawOuter |= ph == 'X' && name == "unit.outer";
        sawInner |= ph == 'X' && name == "unit.inner";
        sawInstant |= ph == 'i' && name == "unit.instant";
        sawCounter |= ph == 'C' && name == "unit.track";
        sawThreadName |= ph == 'M' && name == "thread_name";
    }
    EXPECT_TRUE(sawOuter && sawInner && sawInstant && sawCounter &&
                sawThreadName);
}

TEST_F(TracingTest, CampaignChromeExportValidates)
{
    // Warm the trace cache untraced first: the traced second pass
    // then exercises the replay fast path, whose spans (replay.run,
    // pdn.backend.step_*) this test asserts on.
    TraceCache::instance().setEnabled(true);
    TraceCache::instance().clear();
    tracedMiniCampaign(2, 0.004327);
    Tracer::instance().enable();
    tracedMiniCampaign(2, 0.004327);
    Tracer::instance().disable();

    std::string err;
    JsonValue doc;
    ASSERT_TRUE(parseJson(Tracer::instance().chromeJson(), doc, err))
        << err;
    EXPECT_EQ(validateChrome(doc), "");

    // The campaign instrumentation points are present.
    const JsonValue &events = *doc.find("traceEvents");
    bool sawRun = false, sawBackend = false;
    for (const JsonValue &ev : events.items) {
        const std::string &name = ev.find("name")->str;
        sawRun |= name == "campaign.run";
        sawBackend |= name == "pdn.backend.step_shared" ||
                      name == "pdn.backend.step_per_lane" ||
                      name == "replay.run";
    }
    EXPECT_TRUE(sawRun) << "campaign.run spans missing";
    EXPECT_TRUE(sawBackend) << "replay/backend spans missing";
}

// ---------------------------------------------- canonical determinism

TEST_F(TracingTest, CanonicalByteIdenticalAcrossThreadCounts)
{
    const std::string one = canonicalAt(1);
    ASSERT_FALSE(one.empty());
    EXPECT_EQ(one, canonicalAt(2)) << "1-thread vs 2-thread canonical";
    EXPECT_EQ(one, canonicalAt(8)) << "1-thread vs 8-thread canonical";
}

TEST_F(TracingTest, CanonicalDropsWallAndSortsArgs)
{
    Tracer &t = Tracer::instance();
    t.enable();
    {
        TraceSpan det("unit.det");
        det.arg("zeta", uint64_t{1}).arg("alpha", uint64_t{2});
        TraceSpan wall("unit.wall", TraceClass::Wall);
        obs::traceCounter("unit.track", 1.0);
    }
    {
        TraceSpan parent("unit.parent");
        TraceSpan lifted("unit.lifted", TraceClass::Det, true);
        TraceSpan child("unit.child");
    }
    t.disable();

    const std::string canon = t.canonicalJsonl();
    // Wall spans and counter samples never reach the canonical form.
    EXPECT_EQ(canon.find("unit.wall"), std::string::npos);
    EXPECT_EQ(canon.find("unit.track"), std::string::npos);
    // Args are key-sorted regardless of attach order.
    EXPECT_NE(canon.find("{\"alpha\":2,\"zeta\":1}"),
              std::string::npos)
        << canon;
    // The detached span is a root (its own line), not a child of
    // unit.parent — but spans opened under it still nest.
    EXPECT_NE(canon.find("{\"name\":\"unit.lifted\",\"children\":["
                         "{\"name\":\"unit.child\"}]}"),
              std::string::npos)
        << canon;
    EXPECT_NE(canon.find("{\"name\":\"unit.parent\"}"),
              std::string::npos)
        << canon;
}

// ------------------------------------------------------ golden trace

TEST_F(TracingTest, GoldenMiniTraceCanonical)
{
    const std::string goldenPath =
        std::string(VGUARD_GOLDEN_DIR) + "/mini_trace.jsonl";

    // Pin the cache cold so the capture span fires deterministically
    // whatever ran earlier in this process.
    TraceCache::instance().setEnabled(true);
    TraceCache::instance().clear();
    Tracer::instance().enable();
    tracedMiniCampaign(2, 0.004321);
    Tracer::instance().disable();
    ASSERT_EQ(Tracer::instance().stats().droppedDet, 0u);
    const std::string actual = Tracer::instance().canonicalJsonl();

    if (std::getenv("VGUARD_UPDATE_GOLDEN")) {
        std::ofstream out(goldenPath, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << goldenPath;
        out << actual;
        GTEST_SKIP() << "golden updated: " << goldenPath;
    }

    std::ifstream in(goldenPath, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden " << goldenPath
        << " — generate with VGUARD_UPDATE_GOLDEN=1";
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string expected = buf.str();

    if (expected != actual) {
        std::istringstream e(expected), a(actual);
        std::string el, al;
        int line = 1;
        while (std::getline(e, el) && std::getline(a, al) &&
               el == al)
            ++line;
        FAIL() << "canonical trace diverged from golden at line "
               << line << "\n  golden: " << el << "\n  actual: " << al
               << "\nIf intentional, regenerate with "
                  "VGUARD_UPDATE_GOLDEN=1 and commit the diff.";
    }
}

// --------------------------------------------------------- mechanics

TEST_F(TracingTest, BoundedRingDropsAndCounts)
{
    Tracer &t = Tracer::instance();
    t.enable(4);
    for (int i = 0; i < 16; ++i) {
        TraceSpan det("unit.det");
        TraceSpan wall("unit.wall", TraceClass::Wall);
    }
    t.disable();
    const Tracer::Stats st = t.stats();
    EXPECT_EQ(st.events, 4u) << "ring must stop at capacity";
    EXPECT_GT(st.droppedDet, 0u);
    EXPECT_GT(st.droppedWall, 0u);
    // Exports still work over a saturated ring.
    std::string err;
    JsonValue doc;
    ASSERT_TRUE(parseJson(t.chromeJson(), doc, err)) << err;
    EXPECT_EQ(validateChrome(doc), "");
    const JsonValue *other = doc.find("otherData");
    ASSERT_NE(other, nullptr);
    EXPECT_GT(other->find("dropped_det")->number, 0.0);
}

TEST_F(TracingTest, DisableResumeKeepsBuffers)
{
    Tracer &t = Tracer::instance();
    t.enable();
    { TraceSpan a("unit.first"); }
    t.disable();
    { TraceSpan b("unit.skipped"); }  // not recorded
    t.resume();
    { TraceSpan c("unit.second"); }
    t.disable();

    const std::string canon = t.canonicalJsonl();
    EXPECT_NE(canon.find("unit.first"), std::string::npos);
    EXPECT_NE(canon.find("unit.second"), std::string::npos);
    EXPECT_EQ(canon.find("unit.skipped"), std::string::npos);
}

TEST_F(TracingTest, InternIdsAreStable)
{
    Tracer &t = Tracer::instance();
    const uint32_t a = t.intern("unit.same");
    const uint32_t b = t.intern("unit.same");
    EXPECT_EQ(a, b);
    EXPECT_NE(t.intern("unit.other"), a);
}

TEST_F(TracingTest, RecordingFromManyThreadsKeepsBuffersApart)
{
    Tracer &t = Tracer::instance();
    t.enable();
    std::vector<std::thread> workers;
    for (int w = 0; w < 8; ++w)
        workers.emplace_back([&t] {
            for (int i = 0; i < 200; ++i) {
                TraceSpan s("unit.worker");
                obs::traceCounter("unit.load",
                                  static_cast<double>(i));
            }
            (void)t;
        });
    for (auto &w : workers)
        w.join();
    t.disable();
    const Tracer::Stats st = t.stats();
    EXPECT_EQ(st.threads, 8u);
    // Per iteration: span begin + span end + one counter sample.
    EXPECT_EQ(st.events, 8u * 200u * 3u);
    EXPECT_EQ(st.droppedDet + st.droppedWall, 0u);
    std::string err;
    JsonValue doc;
    ASSERT_TRUE(parseJson(t.chromeJson(), doc, err)) << err;
    EXPECT_EQ(validateChrome(doc), "");
}
