/**
 * @file
 * Differential harness for the lane-batched PDN backend.
 *
 * The contract under test is *bit-identity*, not closeness: the
 * batched engine follows DiscreteStateSpaceN::stepBlock2's canonical
 * FP summation order term for term through elementwise SIMD ops, so
 * every lane must reproduce the scalar golden reference — PdnSim and
 * the scalar PdnBackend — byte for byte, for every package preset,
 * lane count (including non-powers-of-two that exercise the padding
 * tail), block size, and lane order. All assertions are EXPECT_EQ on
 * doubles (0 ULP); if a platform ever needs a looser bound, that bound
 * must be pinned here, not silently widened.
 *
 * Labeled `backend` (ctest -L backend); CI also runs the label under
 * ASan/UBSan and in the TSan campaign job.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiments.hpp"
#include "core/replay_sweep.hpp"
#include "core/threshold_solver.hpp"
#include "core/voltage_sim.hpp"
#include "linsys/worst_case.hpp"
#include "pdn/pdn_backend.hpp"
#include "pdn/pdn_sim.hpp"
#include "util/jsonl.hpp"
#include "util/rng.hpp"
#include "workloads/kernels.hpp"

using namespace vguard;
using namespace vguard::core;
using pdn::BackendKind;
using pdn::LaneConfig;
using pdn::PackageModel;
using pdn::PdnSim;

namespace {

/** The package presets every suite cycles through: the paper's 50 MHz
    reference at several impedances, plus detuned resonances. */
std::vector<LaneConfig>
presetLanes()
{
    auto lane = [](double f0, double zPeak, double iTrim) {
        return LaneConfig{PackageModel::design(f0, zPeak).params(),
                          iTrim};
    };
    return {
        lane(50e6, 1e-3, 0.0),   lane(50e6, 2e-3, 10.0),
        lane(100e6, 1.5e-3, 25.0), lane(200e6, 2e-3, 5.0),
        lane(50e6, 4e-3, 10.0),
    };
}

/** First @p k presets, cycling when k exceeds the preset count. */
std::vector<LaneConfig>
lanesFor(size_t k)
{
    const auto presets = presetLanes();
    std::vector<LaneConfig> lanes;
    lanes.reserve(k);
    for (size_t i = 0; i < k; ++i)
        lanes.push_back(presets[i % presets.size()]);
    return lanes;
}

/** Resonant square wave + seeded noise: rich spectral content with
    excursions large enough to exercise the resonance. */
std::vector<double>
noisyTrace(size_t len, unsigned periodCycles, uint64_t seed)
{
    auto trace =
        linsys::resonantSquareWave(len, periodCycles / 2, 5.0, 45.0);
    Rng rng(seed);
    for (double &a : trace)
        a += rng.uniform(-2.0, 2.0);
    return trace;
}

/** Run @p amps through a backend of @p kind in blocks of
    @p blockCycles; returns the cycle-major voltage matrix. */
std::vector<double>
runShared(BackendKind kind, const std::vector<LaneConfig> &lanes,
          const std::vector<double> &amps, size_t blockCycles)
{
    const auto backend = pdn::makeBackend(kind, lanes);
    const size_t k = backend->lanes();
    std::vector<double> volts(amps.size() * k);
    size_t done = 0;
    while (done < amps.size()) {
        const size_t chunk = std::min(blockCycles, amps.size() - done);
        backend->stepShared(amps.data() + done, chunk,
                            volts.data() + done * k);
        done += chunk;
    }
    return volts;
}

/** EXPECT every element equal, reporting the first mismatch by
    (cycle, lane); memcmp first so the pass path is cheap. */
void
expectBitIdentical(const std::vector<double> &golden,
                   const std::vector<double> &actual, size_t k,
                   const std::string &what)
{
    ASSERT_EQ(golden.size(), actual.size()) << what;
    if (std::memcmp(golden.data(), actual.data(),
                    golden.size() * sizeof(double)) == 0)
        return;
    for (size_t i = 0; i < golden.size(); ++i)
        ASSERT_EQ(golden[i], actual[i])
            << what << ": first divergence at cycle " << i / k
            << " lane " << i % k;
    FAIL() << what << ": memcmp differs but elements match (NaN?)";
}

} // namespace

// ---------------------------------------------------------- shared trace

TEST(BackendDiff, SharedTraceBitExactAcrossLaneCountsAndBlocks)
{
    const auto amps = noisyTrace(6000, 60, 0xd1ff);
    for (const size_t k : {1u, 2u, 3u, 4u, 5u, 7u, 8u}) {
        const auto lanes = lanesFor(k);
        // Golden: raw PdnSim::stepMany per lane in one unblocked pass.
        std::vector<double> golden(amps.size() * k);
        std::vector<double> row(amps.size());
        for (size_t lane = 0; lane < k; ++lane) {
            PdnSim sim(PackageModel(lanes[lane].package));
            sim.trimToCurrent(lanes[lane].iTrim);
            sim.stepMany(amps.data(), amps.size(), row.data());
            for (size_t cyc = 0; cyc < amps.size(); ++cyc)
                golden[cyc * k + lane] = row[cyc];
        }
        for (const size_t block : {size_t{1}, size_t{3}, size_t{17},
                                   size_t{256}, size_t{4096}}) {
            const auto batched =
                runShared(BackendKind::Batched, lanes, amps, block);
            expectBitIdentical(golden, batched, k,
                               "K=" + std::to_string(k) + " block=" +
                                   std::to_string(block));
        }
        // Scalar backend must equal the raw-PdnSim golden too (it IS
        // the reference implementation behind the interface).
        const auto scalar =
            runShared(BackendKind::Scalar, lanes, amps, 256);
        expectBitIdentical(golden, scalar, k,
                           "scalar backend K=" + std::to_string(k));
    }
}

TEST(BackendDiff, PerCycleStepMatchesScalar)
{
    const auto lanes = presetLanes();
    const size_t k = lanes.size();
    const auto scalar = pdn::makeScalarBackend(lanes);
    const auto batched = pdn::makeBatchedBackend(lanes);

    for (size_t lane = 0; lane < k; ++lane)
        ASSERT_EQ(scalar->vddSetPoint(lane), batched->vddSetPoint(lane));

    Rng rng(0x5eed);
    std::vector<double> amps(k), vs(k), vb(k);
    for (size_t cyc = 0; cyc < 2000; ++cyc) {
        for (size_t lane = 0; lane < k; ++lane)
            amps[lane] = rng.uniform(0.0, 50.0);
        scalar->stepCycle(amps.data(), vs.data());
        batched->stepCycle(amps.data(), vb.data());
        for (size_t lane = 0; lane < k; ++lane)
            ASSERT_EQ(vs[lane], vb[lane])
                << "cycle " << cyc << " lane " << lane;
    }
}

TEST(BackendDiff, LanePermutationInvariance)
{
    const auto amps = noisyTrace(3000, 60, 0xbead);
    auto lanes = lanesFor(7);
    const auto base = runShared(BackendKind::Batched, lanes, amps, 256);

    // Rotate the lane list; lane i of the rotated run must equal lane
    // (i + 3) % 7 of the base run exactly.
    std::rotate(lanes.begin(), lanes.begin() + 3, lanes.end());
    const auto rotated =
        runShared(BackendKind::Batched, lanes, amps, 256);
    for (size_t cyc = 0; cyc < amps.size(); ++cyc)
        for (size_t lane = 0; lane < 7; ++lane)
            ASSERT_EQ(rotated[cyc * 7 + lane],
                      base[cyc * 7 + (lane + 3) % 7])
                << "cycle " << cyc << " lane " << lane;
}

TEST(BackendDiff, LanePaddingInvariance)
{
    // A 5-lane batch (pack width 4 ⇒ 3 padding lanes) must produce the
    // same first five columns as an 8-lane batch sharing those lanes:
    // padding lanes may never feed back into real ones.
    const auto amps = noisyTrace(3000, 60, 0xfade);
    const auto lanes8 = lanesFor(8);
    const std::vector<LaneConfig> lanes5(lanes8.begin(),
                                         lanes8.begin() + 5);
    const auto got5 = runShared(BackendKind::Batched, lanes5, amps, 256);
    const auto got8 = runShared(BackendKind::Batched, lanes8, amps, 256);
    for (size_t cyc = 0; cyc < amps.size(); ++cyc)
        for (size_t lane = 0; lane < 5; ++lane)
            ASSERT_EQ(got5[cyc * 5 + lane], got8[cyc * 8 + lane])
                << "cycle " << cyc << " lane " << lane;
}

// ------------------------------------------------- FP summation order

/**
 * Regression pin for the canonical summation order (ISSUE 6 satellite:
 * the audit found output()/next()/stepBlock2 already share one order —
 * this test keeps it that way). The alternating ±large trace makes the
 * accumulations cancellation-heavy, so *any* reassociation, a swapped
 * term, or an FMA contraction shifts low-order bits and fails the
 * EXPECT_EQs below.
 */
TEST(BackendDiff, StepBlockSummationOrderPinned)
{
    const PackageModel model = PackageModel::design(50e6, 2e-3);

    std::vector<double> amps(4096);
    Rng rng(0xacc);
    for (size_t i = 0; i < amps.size(); ++i)
        amps[i] = (i % 2 ? 1.0 : -1.0) * rng.uniform(30.0, 50.0) +
                  rng.uniform(-1e-6, 1e-6);

    PdnSim simBlock(model), simCycle(model);
    simBlock.trimToCurrent(10.0);
    simCycle.trimToCurrent(10.0);

    // stepBlock2 (via stepMany) vs per-cycle output()+next() (via
    // step): documented bit-identical.
    std::vector<double> blockV(amps.size());
    simBlock.stepMany(amps.data(), amps.size(), blockV.data());
    for (size_t cyc = 0; cyc < amps.size(); ++cyc)
        ASSERT_EQ(blockV[cyc], simCycle.step(amps[cyc]))
            << "cycle " << cyc;

    // And the batched kernel at K=1 equals both.
    const std::vector<LaneConfig> one{{model.params(), 10.0}};
    const auto batched = runShared(BackendKind::Batched, one, amps, 512);
    for (size_t cyc = 0; cyc < amps.size(); ++cyc)
        ASSERT_EQ(batched[cyc], blockV[cyc]) << "cycle " << cyc;
}

// ------------------------------------------------- threshold solver

TEST(BackendDiff, ThresholdSolverBatchedMatchesScalar)
{
    ThresholdSpec spec;
    spec.iMin = 5.0;
    spec.iMax = 45.0;

    for (const double zPeak : {1.5e-3, 2.5e-3}) {
        for (const unsigned delay : {0u, 2u}) {
            spec.zPeakOhms = zPeak;
            spec.delayCycles = delay;

            spec.engine = BackendKind::Scalar;
            double sMin, sMax;
            closedLoopExtremes(spec, 0.96, 1.04, sMin, sMax);

            spec.engine = BackendKind::Batched;
            double bMin, bMax;
            closedLoopExtremes(spec, 0.96, 1.04, bMin, bMax);

            EXPECT_EQ(sMin, bMin) << "zPeak=" << zPeak << " d=" << delay;
            EXPECT_EQ(sMax, bMax) << "zPeak=" << zPeak << " d=" << delay;
        }
    }

    // One full solve: identical thresholds, bit for bit.
    spec.zPeakOhms = 2e-3;
    spec.delayCycles = 1;
    spec.engine = BackendKind::Scalar;
    const Thresholds scalar = solveThresholds(spec);
    spec.engine = BackendKind::Batched;
    const Thresholds batched = solveThresholds(spec);
    EXPECT_EQ(scalar.vLow, batched.vLow);
    EXPECT_EQ(scalar.vHigh, batched.vHigh);
    EXPECT_EQ(scalar.feasibleLow, batched.feasibleLow);
    EXPECT_EQ(scalar.feasibleHigh, batched.feasibleHigh);
}

// ------------------------------------------------- replay sweep

TEST(BackendDiff, ReplaySweepMatchesRunReplay)
{
    const auto program = workloads::phasedKernel(400);
    RunSpec spec;
    spec.controllerEnabled = false;
    spec.maxCycles = 20000;

    // Capture once, directly (no cache dependence in this test).
    const VoltageSimConfig baseCfg = makeSimConfig(spec);
    CapturedTrace trace;
    {
        VoltageSim sim(baseCfg, program);
        sim.run(spec.maxCycles, spec.maxInsts, &trace);
    }
    const double iTrim =
        power::WattchModel(baseCfg.power, baseCfg.cpu).minCurrent();

    const std::vector<double> scales{1.0, 2.0, 4.0};
    std::vector<SweepLane> lanes;
    for (const double s : scales)
        lanes.push_back({referencePackage(s), iTrim, baseCfg.band,
                         baseCfg.histLo, baseCfg.histHi,
                         baseCfg.histBins});

    const auto swept = replaySweep(trace.ampsData(), trace.cycles(),
                                   lanes, BackendKind::Batched);
    const auto sweptScalar = replaySweep(
        trace.ampsData(), trace.cycles(), lanes, BackendKind::Scalar);

    for (size_t i = 0; i < scales.size(); ++i) {
        RunSpec laneSpec = spec;
        laneSpec.impedanceScale = scales[i];
        VoltageSim sim(makeSimConfig(laneSpec), program);
        const VoltageSimResult ref = sim.runReplay(trace);

        EXPECT_EQ(ref.cycles, swept[i].cycles) << "scale " << scales[i];
        EXPECT_EQ(ref.minV, swept[i].minV) << "scale " << scales[i];
        EXPECT_EQ(ref.maxV, swept[i].maxV) << "scale " << scales[i];
        EXPECT_EQ(ref.lowEmergencyCycles, swept[i].lowEmergencyCycles)
            << "scale " << scales[i];
        EXPECT_EQ(ref.highEmergencyCycles, swept[i].highEmergencyCycles)
            << "scale " << scales[i];
        ASSERT_EQ(ref.voltageHist.bins(), swept[i].voltageHist.bins());
        for (size_t b = 0; b < ref.voltageHist.bins(); ++b)
            EXPECT_EQ(ref.voltageHist.count(b),
                      swept[i].voltageHist.count(b))
                << "scale " << scales[i] << " bin " << b;

        // Batched and scalar sweeps agree field for field.
        EXPECT_EQ(swept[i].minV, sweptScalar[i].minV);
        EXPECT_EQ(swept[i].maxV, sweptScalar[i].maxV);
        EXPECT_EQ(swept[i].lowEmergencyCycles,
                  sweptScalar[i].lowEmergencyCycles);
        EXPECT_EQ(swept[i].highEmergencyCycles,
                  sweptScalar[i].highEmergencyCycles);
    }
}

// ------------------------------------------------ per-lane traces

namespace {

/** Run per-lane traces through stepPerLane in blocks of
    @p blockCycles; @p traces is cycle-major like the kernel input. */
std::vector<double>
runPerLane(BackendKind kind, const std::vector<LaneConfig> &lanes,
           const std::vector<double> &traces, size_t blockCycles)
{
    const auto backend = pdn::makeBackend(kind, lanes);
    const size_t k = backend->lanes();
    const size_t cycles = traces.size() / k;
    std::vector<double> volts(traces.size());
    size_t done = 0;
    while (done < cycles) {
        const size_t chunk = std::min(blockCycles, cycles - done);
        backend->stepPerLane(traces.data() + done * k, chunk,
                             volts.data() + done * k);
        done += chunk;
    }
    return volts;
}

/** Cycle-major per-lane traces, one distinct noisy trace per lane. */
std::vector<double>
perLaneTraces(size_t cycles, size_t k)
{
    std::vector<std::vector<double>> rows;
    for (size_t lane = 0; lane < k; ++lane)
        rows.push_back(
            noisyTrace(cycles, 40 + 8 * static_cast<unsigned>(lane),
                       0xfadedull + lane));
    std::vector<double> out(cycles * k);
    for (size_t cyc = 0; cyc < cycles; ++cyc)
        for (size_t lane = 0; lane < k; ++lane)
            out[cyc * k + lane] = rows[lane][cyc];
    return out;
}

} // namespace

TEST(BackendDiff, PerLaneTracesBitExactAcrossLaneCountsAndBlocks)
{
    for (const size_t k : {1u, 2u, 3u, 4u, 5u, 7u, 8u}) {
        const auto lanes = lanesFor(k);
        const auto traces = perLaneTraces(6000, k);
        const size_t cycles = traces.size() / k;

        // Golden: raw PdnSim::stepMany per lane in one unblocked pass.
        std::vector<double> golden(traces.size());
        std::vector<double> col(cycles), row(cycles);
        for (size_t lane = 0; lane < k; ++lane) {
            PdnSim sim(PackageModel(lanes[lane].package));
            sim.trimToCurrent(lanes[lane].iTrim);
            for (size_t cyc = 0; cyc < cycles; ++cyc)
                col[cyc] = traces[cyc * k + lane];
            sim.stepMany(col.data(), cycles, row.data());
            for (size_t cyc = 0; cyc < cycles; ++cyc)
                golden[cyc * k + lane] = row[cyc];
        }

        for (const size_t blk : {1u, 3u, 17u, 256u, 4096u}) {
            expectBitIdentical(
                golden, runPerLane(BackendKind::Scalar, lanes, traces, blk),
                k, "scalar k=" + std::to_string(k) + " blk=" +
                       std::to_string(blk));
            expectBitIdentical(
                golden,
                runPerLane(BackendKind::Batched, lanes, traces, blk), k,
                "batched k=" + std::to_string(k) + " blk=" +
                    std::to_string(blk));
        }
    }
}

TEST(BackendDiff, PerLaneStepMatchesPerCycleStream)
{
    // Contract: stepPerLane(n) is bit-identical to n stepCycle calls,
    // including when the two interleave on one backend instance.
    const size_t k = 5;
    const auto lanes = lanesFor(k);
    const auto traces = perLaneTraces(3000, k);
    const size_t cycles = traces.size() / k;

    for (const BackendKind kind :
         {BackendKind::Scalar, BackendKind::Batched}) {
        const auto blocked = pdn::makeBackend(kind, lanes);
        const auto cyclic = pdn::makeBackend(kind, lanes);
        std::vector<double> vBlk(traces.size()), vCyc(traces.size());

        size_t done = 0;
        Rng rng(0x5eed);
        while (done < cycles) {
            const size_t chunk = std::min<size_t>(
                1 + static_cast<size_t>(rng.below(200)),
                cycles - done);
            blocked->stepPerLane(traces.data() + done * k, chunk,
                                 vBlk.data() + done * k);
            for (size_t cyc = 0; cyc < chunk; ++cyc)
                cyclic->stepCycle(traces.data() + (done + cyc) * k,
                                  vCyc.data() + (done + cyc) * k);
            done += chunk;
        }
        expectBitIdentical(vBlk, vCyc, k,
                           kind == BackendKind::Scalar ? "scalar"
                                                       : "batched");
    }
}

// ---------------------------------------------- entry-point checks

/**
 * Regression tests for the sweep/backend validation bugfix: these
 * configurations used to sail straight into the math (a negative band
 * inverts the emergency window; non-finite trim poisons every lane)
 * and now must die in VGUARD_CHECK at the entry point.
 */
TEST(BackendDiffDeathTest, ReplaySweepRejectsNegativeBand)
{
    const std::vector<double> amps{10.0, 20.0, 30.0};
    std::vector<SweepLane> lanes{
        {PackageModel::design(50e6, 2e-3).params(), 5.0}};
    lanes[0].band = -0.05;
    EXPECT_DEATH(replaySweep(amps.data(), amps.size(), lanes,
                             BackendKind::Batched),
                 "check failed");
}

TEST(BackendDiffDeathTest, ReplaySweepRejectsNonFiniteTrim)
{
    const std::vector<double> amps{10.0, 20.0, 30.0};
    std::vector<SweepLane> lanes{
        {PackageModel::design(50e6, 2e-3).params(),
         std::numeric_limits<double>::quiet_NaN()}};
    EXPECT_DEATH(replaySweep(amps.data(), amps.size(), lanes,
                             BackendKind::Scalar),
                 "check failed");
}

TEST(BackendDiffDeathTest, ReplaySweepRejectsInvertedHistogramRange)
{
    const std::vector<double> amps{10.0, 20.0, 30.0};
    std::vector<SweepLane> lanes{
        {PackageModel::design(50e6, 2e-3).params(), 5.0}};
    lanes[0].histLo = 1.10;
    lanes[0].histHi = 0.90;
    EXPECT_DEATH(replaySweep(amps.data(), amps.size(), lanes,
                             BackendKind::Batched),
                 "check failed");
}

TEST(BackendDiffDeathTest, BackendFactoriesRejectDegeneratePackages)
{
    for (const BackendKind kind :
         {BackendKind::Scalar, BackendKind::Batched}) {
        {
            std::vector<LaneConfig> lanes = lanesFor(2);
            lanes[1].iTrim = std::numeric_limits<double>::infinity();
            EXPECT_DEATH(pdn::makeBackend(kind, lanes), "check failed");
        }
        {
            std::vector<LaneConfig> lanes = lanesFor(2);
            lanes[0].package.vNominal = 0.0;
            EXPECT_DEATH(pdn::makeBackend(kind, lanes), "check failed");
        }
        {
            std::vector<LaneConfig> lanes = lanesFor(3);
            lanes[2].package.lPkg =
                std::numeric_limits<double>::quiet_NaN();
            EXPECT_DEATH(pdn::makeBackend(kind, lanes), "check failed");
        }
        EXPECT_DEATH(pdn::makeBackend(kind, {}), "check failed");
    }
}

// ------------------------------------------------- golden mini sweep

namespace {

/** Deterministic JSONL for a synthetic 5-package impedance sweep. */
std::string
miniSweepJsonl(BackendKind kind)
{
    const auto amps = noisyTrace(8192, 60, 42);
    const std::vector<double> zPeaks{1e-3, 1.5e-3, 2e-3, 3e-3, 4e-3};
    std::vector<SweepLane> lanes;
    for (const double z : zPeaks)
        lanes.push_back({PackageModel::design(50e6, z).params(), 5.0});

    const auto results =
        replaySweep(amps.data(), amps.size(), lanes, kind);

    std::string out;
    for (size_t i = 0; i < lanes.size(); ++i) {
        JsonWriter w;
        w.beginObject();
        w.field("zPeakOhms", zPeaks[i]);
        w.field("cycles", results[i].cycles);
        w.field("minV", results[i].minV);
        w.field("maxV", results[i].maxV);
        w.field("lowEmergencyCycles", results[i].lowEmergencyCycles);
        w.field("highEmergencyCycles", results[i].highEmergencyCycles);
        w.key("hist").beginArray();
        for (size_t b = 0; b < results[i].voltageHist.bins(); ++b)
            w.value(results[i].voltageHist.count(b));
        w.endArray();
        w.endObject();
        out += w.take();
        out += '\n';
    }
    return out;
}

} // namespace

/**
 * The checked-in mini-sweep golden is produced by the *batched*
 * backend and must match the scalar rendering byte for byte — a
 * platform or codegen change that nudges any lane shows up as a diff
 * here. Regenerate deliberately with
 *   VGUARD_UPDATE_GOLDEN=1 ./tests/test_backend_diff \
 *       --gtest_filter=BackendDiff.MiniImpedanceSweepGolden
 */
TEST(BackendDiff, MiniImpedanceSweepGolden)
{
    const std::string goldenPath =
        std::string(VGUARD_GOLDEN_DIR) + "/mini_impedance_sweep.jsonl";
    const std::string batched = miniSweepJsonl(BackendKind::Batched);
    const std::string scalar = miniSweepJsonl(BackendKind::Scalar);
    EXPECT_EQ(batched, scalar)
        << "batched and scalar sweeps render different bytes";

    if (std::getenv("VGUARD_UPDATE_GOLDEN")) {
        std::ofstream out(goldenPath, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << goldenPath;
        out << batched;
        GTEST_SKIP() << "golden updated: " << goldenPath;
    }

    std::ifstream in(goldenPath, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden " << goldenPath
        << " — generate with VGUARD_UPDATE_GOLDEN=1";
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string expected = buf.str();

    if (expected != batched) {
        std::istringstream ea(expected), aa(batched);
        std::string el, al;
        int line = 1;
        while (std::getline(ea, el) && std::getline(aa, al) && el == al)
            ++line;
        ADD_FAILURE() << "golden mismatch at line " << line
                      << "\n  expected: " << el
                      << "\n  actual:   " << al;
    }
    SUCCEED();
}
