/**
 * @file
 * Tests for src/core — the paper's contribution: threshold sensor,
 * actuators, controller, the control-theoretic threshold solver, the
 * coupled VoltageSim, and the experiment harness. Includes the
 * headline property: with solved thresholds the controller eliminates
 * voltage emergencies on the dI/dt stressmark.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/actuator.hpp"
#include "core/controller.hpp"
#include "core/experiments.hpp"
#include "core/sensor.hpp"
#include "core/threshold_solver.hpp"
#include "core/trace.hpp"
#include "core/voltage_sim.hpp"
#include "workloads/kernels.hpp"
#include "workloads/spec_proxy.hpp"
#include "workloads/stressmark.hpp"

namespace {

using namespace vguard;
using namespace vguard::core;

// ------------------------------------------------------------- sensor

TEST(Sensor, ThreeLevels)
{
    SensorConfig sc;
    sc.vLow = 0.97;
    sc.vHigh = 1.03;
    sc.delayCycles = 0;
    ThresholdSensor s(sc);
    EXPECT_EQ(s.observe(0.96), VoltageLevel::Low);
    EXPECT_EQ(s.observe(1.00), VoltageLevel::Normal);
    EXPECT_EQ(s.observe(1.04), VoltageLevel::High);
}

TEST(Sensor, DelayShiftsReadings)
{
    SensorConfig sc;
    sc.vLow = 0.97;
    sc.vHigh = 1.03;
    sc.delayCycles = 2;
    ThresholdSensor s(sc);
    s.reset(1.0);
    s.observe(0.90); // t=0 (reading: fill value 1.0)
    s.observe(1.00); // t=1
    EXPECT_EQ(s.observe(1.00), VoltageLevel::Low); // sees t=0's 0.90
    EXPECT_NEAR(s.lastReading(), 0.90, 1e-12);
}

TEST(Sensor, ZeroDelaySeesCurrentCycle)
{
    SensorConfig sc;
    sc.vLow = 0.97;
    sc.vHigh = 1.03;
    sc.delayCycles = 0;
    ThresholdSensor s(sc);
    s.reset(1.0);
    EXPECT_EQ(s.observe(0.5), VoltageLevel::Low);
}

TEST(Sensor, NoiseIsBounded)
{
    SensorConfig sc;
    sc.vLow = 0.0;
    sc.vHigh = 2.0;
    sc.delayCycles = 0;
    sc.noiseMagnitude = 0.02;
    ThresholdSensor s(sc);
    for (int i = 0; i < 5000; ++i) {
        s.observe(1.0);
        EXPECT_LE(std::fabs(s.lastReading() - 1.0), 0.02);
    }
}

TEST(Sensor, NoiseIsDeterministicPerSeed)
{
    SensorConfig sc;
    sc.vLow = 0.0;
    sc.vHigh = 2.0;
    sc.noiseMagnitude = 0.01;
    sc.seed = 77;
    ThresholdSensor a(sc), b(sc);
    for (int i = 0; i < 100; ++i) {
        a.observe(1.0);
        b.observe(1.0);
        EXPECT_DOUBLE_EQ(a.lastReading(), b.lastReading());
    }
}

TEST(Sensor, GaussianNoiseHasMatchingSigma)
{
    // Regression: the sensor used to draw uniform noise regardless of
    // configuration while rng.hpp's docs promised a Gaussian — the
    // Gaussian kind must actually produce sigma = noiseMagnitude and
    // exceed the uniform bound sometimes.
    SensorConfig sc;
    sc.vLow = 0.0;
    sc.vHigh = 2.0;
    sc.delayCycles = 0;
    sc.noiseMagnitude = 0.02;
    sc.noiseKind = SensorNoiseKind::Gaussian;
    ThresholdSensor s(sc);
    double sum = 0.0, sumSq = 0.0;
    int outsideUniformBound = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        s.observe(1.0);
        const double e = s.lastReading() - 1.0;
        sum += e;
        sumSq += e * e;
        if (std::fabs(e) > sc.noiseMagnitude)
            ++outsideUniformBound;
    }
    EXPECT_NEAR(sum / n, 0.0, 5e-4);
    EXPECT_NEAR(std::sqrt(sumSq / n), 0.02, 0.002);
    // A N(0, 0.02) draw lands beyond +-0.02 about 32 % of the time; a
    // uniform +-0.02 draw never does.
    EXPECT_GT(outsideUniformBound, n / 5);
}

TEST(Sensor, UniformNoiseStaysUniform)
{
    // The default kind keeps the paper's bounded Section-4.5 error
    // model: hard bound and ~sqrt(1/3) * bound standard deviation
    // (distinguishes uniform from a sigma=bound Gaussian).
    SensorConfig sc;
    sc.vLow = 0.0;
    sc.vHigh = 2.0;
    sc.delayCycles = 0;
    sc.noiseMagnitude = 0.02;
    ThresholdSensor s(sc);
    double sumSq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        s.observe(1.0);
        const double e = s.lastReading() - 1.0;
        ASSERT_LE(std::fabs(e), 0.02);
        sumSq += e * e;
    }
    EXPECT_NEAR(std::sqrt(sumSq / n), 0.02 / std::sqrt(3.0), 0.001);
}

TEST(Sensor, RejectsInvertedThresholds)
{
    SensorConfig sc;
    sc.vLow = 1.05;
    sc.vHigh = 0.95;
    EXPECT_EXIT(ThresholdSensor{sc}, ::testing::ExitedWithCode(1),
                "vLow");
}

// ----------------------------------------------------------- actuator

TEST(Actuator, Names)
{
    EXPECT_STREQ(actuatorName(ActuatorKind::Fu), "FU");
    EXPECT_STREQ(actuatorName(ActuatorKind::FuDl1Il1), "FU/DL1/IL1");
}

TEST(Actuator, LowGatesControlledUnits)
{
    cpu::OoOCore core(cpu::CpuConfig{}, workloads::busyKernel());
    Actuator act(ActuatorKind::FuDl1);
    act.apply(VoltageLevel::Low, core);
    EXPECT_TRUE(core.gates().fu);
    EXPECT_TRUE(core.gates().dl1);
    EXPECT_FALSE(core.gates().il1);
    EXPECT_EQ(act.gatedCycles(), 1u);
    EXPECT_EQ(act.lowTriggers(), 1u);
}

TEST(Actuator, HighPhantomFires)
{
    cpu::OoOCore core(cpu::CpuConfig{}, workloads::busyKernel());
    Actuator act(ActuatorKind::Fu);
    act.apply(VoltageLevel::High, core);
    EXPECT_FALSE(core.gates().fu);
    EXPECT_EQ(act.phantomCycles(), 1u);
    EXPECT_EQ(act.highTriggers(), 1u);
}

TEST(Actuator, NormalReleasesEverything)
{
    cpu::OoOCore core(cpu::CpuConfig{}, workloads::busyKernel());
    Actuator act(ActuatorKind::Ideal);
    act.apply(VoltageLevel::Low, core);
    act.apply(VoltageLevel::Normal, core);
    EXPECT_FALSE(core.gates().any());
}

TEST(Actuator, TriggerCountsEdgeOnly)
{
    cpu::OoOCore core(cpu::CpuConfig{}, workloads::busyKernel());
    Actuator act(ActuatorKind::Ideal);
    for (int i = 0; i < 5; ++i)
        act.apply(VoltageLevel::Low, core);
    EXPECT_EQ(act.lowTriggers(), 1u);
    EXPECT_EQ(act.gatedCycles(), 5u);
}

TEST(Actuator, ResetClearsCountersKeepsLevel)
{
    cpu::OoOCore core(cpu::CpuConfig{}, workloads::busyKernel());
    Actuator act(ActuatorKind::Ideal);
    for (int i = 0; i < 5; ++i)
        act.apply(VoltageLevel::Low, core);
    act.reset();
    EXPECT_EQ(act.gatedCycles(), 0u);
    EXPECT_EQ(act.lowTriggers(), 0u);
    // The level is deliberately kept: an actuation already in flight
    // counts cycles in the new window but is not a fresh trigger.
    act.apply(VoltageLevel::Low, core);
    EXPECT_EQ(act.gatedCycles(), 1u);
    EXPECT_EQ(act.lowTriggers(), 0u);
    // New edges after the reset count normally.
    act.apply(VoltageLevel::Normal, core);
    act.apply(VoltageLevel::High, core);
    EXPECT_EQ(act.highTriggers(), 1u);
    EXPECT_EQ(act.phantomCycles(), 1u);
}

TEST(VoltageSim, BackToBackRunsReportPerRunCounters)
{
    // Regression: run() never cleared the actuator, so a second run()
    // on the same sim reported the first run's gated cycles and
    // triggers on top of its own.
    RunSpec rs;
    rs.controllerEnabled = false;
    VoltageSimConfig cfg = makeSimConfig(rs);
    SensorConfig sc;
    sc.vLow = 1.5; // every reading is "low": gates every cycle
    sc.vHigh = 2.0;
    sc.delayCycles = 0;
    cfg.sensor = sc;
    VoltageSim sim(cfg, workloads::busyKernel(100000));

    const auto r1 = sim.run(1000);
    const auto r2 = sim.run(1000);
    ASSERT_EQ(r1.cycles, 1000u);
    ASSERT_EQ(r2.cycles, 1000u);
    EXPECT_EQ(r1.gatedCycles, r1.cycles);
    EXPECT_EQ(r2.gatedCycles, r2.cycles); // pre-fix: 2 * cycles
    EXPECT_EQ(r1.lowTriggers, 1u);
    EXPECT_EQ(r2.lowTriggers, 0u); // still in flight, not re-triggered
}

// ------------------------------------------------------------- solver

ThresholdSpec
solverSpec(unsigned delay, double zScale = 2.0)
{
    const auto &range = referenceCurrentRange();
    ThresholdSpec spec;
    spec.zPeakOhms = referenceTarget().zTargetOhms * zScale;
    spec.iMin = range.progMin;
    spec.iMax = range.progMax;
    spec.iGate = range.gatedMin;
    spec.iPhantom = range.phantomMax;
    spec.iTrim = range.gatedMin;
    spec.delayCycles = delay;
    return spec;
}

TEST(Solver, ThresholdsInsideBand)
{
    const auto th = solveThresholds(solverSpec(1));
    EXPECT_TRUE(th.feasibleLow);
    EXPECT_TRUE(th.feasibleHigh);
    EXPECT_GT(th.vLow, 0.95);
    EXPECT_LT(th.vLow, 1.0);
    EXPECT_GT(th.vHigh, 1.0);
    EXPECT_LE(th.vHigh, 1.05);
}

TEST(Solver, WindowShrinksWithDelay)
{
    // Paper Table 3's headline shape.
    double prev = 1e9;
    for (unsigned d : {0u, 2u, 4u, 6u}) {
        const auto th = solveThresholds(solverSpec(d));
        ASSERT_TRUE(th.feasibleLow) << "delay " << d;
        EXPECT_LE(th.safeWindowV(), prev + 1e-6) << "delay " << d;
        prev = th.safeWindowV();
    }
}

TEST(Solver, LowThresholdRisesWithDelay)
{
    const auto t0 = solveThresholds(solverSpec(0));
    const auto t6 = solveThresholds(solverSpec(6));
    EXPECT_GT(t6.vLow, t0.vLow + 0.005);
}

TEST(Solver, ErrorTightensThresholds)
{
    auto spec = solverSpec(2);
    const auto clean = solveThresholds(spec);
    spec.sensorError = 0.015;
    const auto noisy = solveThresholds(spec);
    EXPECT_GT(noisy.vLow, clean.vLow + 0.010);
}

TEST(Solver, SolvedThresholdsSurviveClosedLoopCheck)
{
    const auto spec = solverSpec(3);
    const auto th = solveThresholds(spec);
    double vMin, vMax;
    closedLoopExtremes(spec, th.vLow, th.vHigh, vMin, vMax);
    EXPECT_GE(vMin, 0.95 - 1e-9);
    EXPECT_LE(vMax, 1.05 + 1e-9);
}

TEST(Solver, LooseThresholdsFailClosedLoopCheck)
{
    const auto spec = solverSpec(3);
    double vMin, vMax;
    // Thresholds at the very band edges cannot protect with delay.
    closedLoopExtremes(spec, 0.9501, 1.0499, vMin, vMax);
    EXPECT_LT(vMin, 0.95);
}

TEST(Solver, HigherImpedanceNeedsTighterLowThreshold)
{
    const auto cheap = solveThresholds(solverSpec(2, 3.0));
    const auto good = solveThresholds(solverSpec(2, 1.5));
    EXPECT_GT(cheap.vLow, good.vLow);
}

TEST(Solver, RejectsBadCurrents)
{
    auto spec = solverSpec(0);
    spec.iMax = spec.iMin;
    EXPECT_EXIT(solveThresholds(spec), ::testing::ExitedWithCode(1),
                "iMax");
}

// --------------------------------------------------------- VoltageSim

TEST(VoltageSim, UncontrolledStressmarkBreachesAt200)
{
    RunSpec rs;
    rs.impedanceScale = 2.0;
    rs.controllerEnabled = false;
    rs.maxCycles = 60000;
    const auto cal =
        workloads::StressmarkBuilder::calibrate(60, referenceMachine().cpu);
    const auto res = runWorkload(
        workloads::StressmarkBuilder::build(cal.params), rs);
    EXPECT_GT(res.emergencyCycles(), 0u);
    EXPECT_LT(res.minV, 0.95);
}

TEST(VoltageSim, ControllerEliminatesEmergencies)
{
    // The paper's central claim, checked across sensor delays.
    const auto cal =
        workloads::StressmarkBuilder::calibrate(60, referenceMachine().cpu);
    const auto prog = workloads::StressmarkBuilder::build(cal.params);
    for (unsigned d : {0u, 2u, 5u}) {
        RunSpec rs;
        rs.impedanceScale = 2.0;
        rs.delayCycles = d;
        rs.maxCycles = 60000;
        const auto res = runWorkload(prog, rs);
        EXPECT_EQ(res.emergencyCycles(), 0u) << "delay " << d;
        EXPECT_GE(res.minV, 0.95) << "delay " << d;
        EXPECT_LE(res.maxV, 1.05) << "delay " << d;
        EXPECT_GT(res.gatedCycles, 0u) << "delay " << d;
    }
}

TEST(VoltageSim, SpecSafeUncontrolledAt200)
{
    for (const char *name : {"ammp", "galgel", "gcc"}) {
        RunSpec rs;
        rs.impedanceScale = 2.0;
        rs.controllerEnabled = false;
        rs.maxCycles = 50000;
        const auto res =
            runWorkload(workloads::buildSpecProxy(name), rs);
        EXPECT_EQ(res.emergencyCycles(), 0u) << name;
    }
}

TEST(VoltageSim, ConvolutionBackendAgrees)
{
    RunSpec a;
    a.impedanceScale = 2.0;
    a.controllerEnabled = false;
    a.maxCycles = 8000;
    RunSpec b = a;
    b.useConvolution = true;
    const auto prog = workloads::phasedKernel(30);
    const auto ra = runWorkload(prog, a);
    const auto rb = runWorkload(prog, b);
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_NEAR(ra.minV, rb.minV, 1e-5);
    EXPECT_NEAR(ra.maxV, rb.maxV, 1e-5);
}

TEST(VoltageSim, GatingReducesCurrentDuringLowPhases)
{
    // With the controller on, minimum voltage improves vs uncontrolled.
    const auto cal =
        workloads::StressmarkBuilder::calibrate(60, referenceMachine().cpu);
    const auto prog = workloads::StressmarkBuilder::build(cal.params);
    RunSpec off;
    off.impedanceScale = 3.0;
    off.controllerEnabled = false;
    off.maxCycles = 40000;
    RunSpec on = off;
    on.controllerEnabled = true;
    on.delayCycles = 1;
    const auto roff = runWorkload(prog, off);
    const auto ron = runWorkload(prog, on);
    EXPECT_GT(ron.minV, roff.minV + 0.005);
    EXPECT_LT(ron.maxV, roff.maxV - 0.005);
}

TEST(VoltageSim, HistogramAccumulates)
{
    RunSpec rs;
    rs.impedanceScale = 1.0;
    rs.controllerEnabled = false;
    rs.maxCycles = 5000;
    const auto res = runWorkload(workloads::busyKernel(), rs);
    EXPECT_EQ(res.voltageHist.total(), res.cycles);
    EXPECT_GT(res.cycles, 0u);
}

TEST(VoltageSim, EnergyAccountingSane)
{
    RunSpec rs;
    rs.impedanceScale = 1.0;
    rs.controllerEnabled = false;
    rs.maxCycles = 10000;
    const auto res = runWorkload(workloads::busyKernel(), rs);
    // E = avgP * time; time = cycles / 3 GHz.
    const double t = res.cycles / 3e9;
    EXPECT_NEAR(res.energyJ, res.avgPowerW * t, 1e-9);
    EXPECT_GT(res.avgPowerW, 10.0);
    EXPECT_LT(res.avgPowerW, 65.0);
}

TEST(VoltageSim, MaxInstsLimitsWork)
{
    RunSpec rs;
    rs.impedanceScale = 1.0;
    rs.controllerEnabled = false;
    rs.maxCycles = 100000;
    rs.maxInsts = 2000;
    const auto res = runWorkload(workloads::busyKernel(), rs);
    EXPECT_GE(res.committed, 2000u);
    EXPECT_LT(res.committed, 2100u); // one cycle of overshoot at most
}

TEST(VoltageSim, TraceSamplesExposeControllerAction)
{
    const auto cal =
        workloads::StressmarkBuilder::calibrate(60, referenceMachine().cpu);
    RunSpec rs;
    rs.impedanceScale = 2.0;
    rs.delayCycles = 1;
    VoltageSim sim(makeSimConfig(rs),
                   workloads::StressmarkBuilder::build(cal.params));
    bool sawGated = false;
    double vMin = 2.0;
    for (int i = 0; i < 60000; ++i) {
        const auto s = sim.step();
        sawGated |= s.gated;
        vMin = std::min(vMin, s.volts);
    }
    EXPECT_TRUE(sawGated);
    EXPECT_GE(vMin, 0.95);
}

// -------------------------------------------------------- experiments

TEST(Experiments, CurrentRangeOrdering)
{
    const auto &r = referenceCurrentRange();
    EXPECT_LT(r.gatedMin, r.progMin);
    EXPECT_LT(r.progMin, r.progMax);
    EXPECT_LT(r.progMax, r.phantomMax);
}

TEST(Experiments, TargetImpedanceAboveDc)
{
    EXPECT_GT(referenceTarget().zTargetOhms, 0.5e-3);
    EXPECT_LT(referenceTarget().zTargetOhms, 50e-3);
}

TEST(Experiments, PackageScalesWithImpedance)
{
    const auto p1 = pdn::PackageModel(referencePackage(1.0));
    const auto p2 = pdn::PackageModel(referencePackage(2.0));
    EXPECT_NEAR(p2.peakImpedance(), 2.0 * p1.peakImpedance(),
                0.02 * p1.peakImpedance());
}

TEST(Experiments, ThresholdsCached)
{
    const auto &a = referenceThresholds(2.0, 1);
    const auto &b = referenceThresholds(2.0, 1);
    EXPECT_EQ(&a, &b); // same cached object
}

TEST(Experiments, CompareControlledSpecCheap)
{
    RunSpec rs;
    rs.impedanceScale = 2.0;
    rs.delayCycles = 1;
    rs.maxCycles = 30000;
    const auto cmp =
        compareControlled(workloads::buildSpecProxy("gzip"), rs);
    // SPEC-class work should be nearly free to control.
    EXPECT_LT(std::fabs(cmp.perfLossPct), 2.0);
    EXPECT_LT(std::fabs(cmp.energyIncreasePct), 2.0);
    EXPECT_EQ(cmp.controlled.emergencyCycles(), 0u);
}

TEST(Experiments, CompareControlledStressmarkCostly)
{
    const auto cal =
        workloads::StressmarkBuilder::calibrate(60, referenceMachine().cpu);
    RunSpec rs;
    rs.impedanceScale = 2.0;
    rs.delayCycles = 5;
    rs.maxCycles = 30000;
    const auto cmp = compareControlled(
        workloads::StressmarkBuilder::build(cal.params), rs);
    EXPECT_GT(cmp.perfLossPct, 2.0); // visible, unlike SPEC
    EXPECT_EQ(cmp.controlled.emergencyCycles(), 0u);
}

TEST(Experiments, CycleBudgetEnv)
{
    unsetenv("VGUARD_CYCLES");
    EXPECT_EQ(cycleBudget(1234), 1234u);
    setenv("VGUARD_CYCLES", "777", 1);
    EXPECT_EQ(cycleBudget(1234), 777u);
    unsetenv("VGUARD_CYCLES");
}

// ------------------------------------------------------ trace recorder

/** A distinguishable sample: cycle i, amps i, volts 1 + i/1000. */
TraceSample
traceSample(uint64_t i)
{
    TraceSample t;
    t.cycle = i;
    t.amps = static_cast<double>(i);
    t.volts = 1.0 + static_cast<double>(i) / 1000.0;
    t.gated = i % 3 == 0;
    t.phantom = i % 5 == 0;
    return t;
}

TEST(TraceRecorder, LinearisedBeforeWrapIsInsertionOrder)
{
    TraceRecorder rec(8);
    for (uint64_t i = 0; i < 5; ++i)
        rec.record(traceSample(i));
    EXPECT_EQ(rec.size(), 5u);
    const auto lin = rec.linearised();
    ASSERT_EQ(lin.size(), 5u);
    for (uint64_t i = 0; i < 5; ++i)
        EXPECT_EQ(lin[i].cycle, i);
}

TEST(TraceRecorder, LinearisedAfterWrapKeepsNewestOldestToNewest)
{
    // 20 samples into capacity 8 must retain exactly cycles 12..19 in
    // order, regardless of where the ring head ended up.
    TraceRecorder rec(8);
    for (uint64_t i = 0; i < 20; ++i)
        rec.record(traceSample(i));
    EXPECT_EQ(rec.size(), 8u);
    const auto lin = rec.linearised();
    ASSERT_EQ(lin.size(), 8u);
    for (size_t i = 0; i < 8; ++i)
        EXPECT_EQ(lin[i].cycle, 12 + i);
    // at() agrees with the linearised view.
    for (size_t i = 0; i < 8; ++i)
        EXPECT_EQ(rec.at(i).cycle, lin[i].cycle);
}

TEST(TraceRecorder, WrapAtExactCapacityBoundary)
{
    // Exactly capacity samples: full but not wrapped; one more sample
    // evicts only the oldest.
    TraceRecorder rec(4);
    for (uint64_t i = 0; i < 4; ++i)
        rec.record(traceSample(i));
    EXPECT_EQ(rec.linearised().front().cycle, 0u);
    rec.record(traceSample(4));
    const auto lin = rec.linearised();
    ASSERT_EQ(lin.size(), 4u);
    EXPECT_EQ(lin.front().cycle, 1u);
    EXPECT_EQ(lin.back().cycle, 4u);
}

TEST(TraceRecorder, SummaryCoversOnlyRetainedWindow)
{
    // After wrap, the evicted early samples must not contaminate the
    // summary: min/max/mean reflect cycles 12..19 only.
    TraceRecorder rec(8);
    for (uint64_t i = 0; i < 20; ++i)
        rec.record(traceSample(i));
    const auto s = rec.summary();
    EXPECT_DOUBLE_EQ(s.minV, 1.012);
    EXPECT_DOUBLE_EQ(s.maxV, 1.019);
    EXPECT_DOUBLE_EQ(s.peakAmps, 19.0);
    EXPECT_DOUBLE_EQ(s.meanAmps, (12.0 + 19.0) / 2.0);
    // gated: multiples of 3 in [12,19] = {12,15,18};
    // phantom: multiples of 5 = {15}.
    EXPECT_EQ(s.gatedCycles, 3u);
    EXPECT_EQ(s.phantomCycles, 1u);
}

TEST(TraceRecorder, CsvAfterWrapStartsAtOldestRetained)
{
    TraceRecorder rec(4);
    for (uint64_t i = 0; i < 10; ++i)
        rec.record(traceSample(i));
    const std::string csv = rec.csv();
    EXPECT_EQ(csv.rfind("cycle,amps,volts,gated,phantom\n", 0), 0u);
    // First data row is the oldest retained sample (cycle 6), and the
    // evicted cycle 5 appears nowhere.
    EXPECT_NE(csv.find("\n6,"), std::string::npos);
    EXPECT_EQ(csv.find("\n5,"), std::string::npos);
    // 4 data rows + header.
    size_t rows = 0;
    for (char c : csv)
        rows += c == '\n';
    EXPECT_EQ(rows, 5u);
}

TEST(TraceRecorder, CsvStrideDecimatesFromOldest)
{
    TraceRecorder rec(8);
    for (uint64_t i = 0; i < 20; ++i)
        rec.record(traceSample(i));
    // stride 3 over retained cycles 12..19 -> rows 12, 15, 18.
    const std::string csv = rec.csv(3);
    size_t rows = 0;
    for (char c : csv)
        rows += c == '\n';
    EXPECT_EQ(rows, 4u); // header + 3
    EXPECT_NE(csv.find("\n12,"), std::string::npos);
    EXPECT_NE(csv.find("\n15,"), std::string::npos);
    EXPECT_NE(csv.find("\n18,"), std::string::npos);
    EXPECT_EQ(csv.find("\n13,"), std::string::npos);

    // stride larger than the retained count -> just the oldest row.
    const std::string one = rec.csv(100);
    rows = 0;
    for (char c : one)
        rows += c == '\n';
    EXPECT_EQ(rows, 2u);
    EXPECT_NE(one.find("\n12,"), std::string::npos);
}

TEST(TraceRecorder, ClearResetsWrapState)
{
    TraceRecorder rec(4);
    for (uint64_t i = 0; i < 9; ++i)
        rec.record(traceSample(i));
    rec.clear();
    EXPECT_TRUE(rec.empty());
    EXPECT_EQ(rec.csv(), "cycle,amps,volts,gated,phantom\n");
    // Refill after clear behaves like a fresh recorder (no stale head).
    for (uint64_t i = 100; i < 103; ++i)
        rec.record(traceSample(i));
    const auto lin = rec.linearised();
    ASSERT_EQ(lin.size(), 3u);
    EXPECT_EQ(lin[0].cycle, 100u);
    EXPECT_EQ(lin[2].cycle, 102u);
}

} // namespace
