/**
 * @file
 * Tests for the open-loop trace-replay fast path (core/trace_cache):
 * replayed results must be bit-identical to full-core runs on both
 * voltage back-ends and at any block size, concurrent first calls on
 * one cache key must collapse to a single capture, campaign artifacts
 * must stay byte-identical across thread counts and with the cache
 * toggled off, the committed golden mini-campaign must be unchanged
 * with the cache force-enabled, and back-to-back VoltageSim::run()
 * calls must continue the PDN/convolver state exactly like one long
 * run.
 *
 * Labeled `campaign` so the suite runs under TSan via
 *   cmake -B build-tsan -DVGUARD_SANITIZE=thread
 *   ctest --test-dir build-tsan -L campaign
 */

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/experiments.hpp"
#include "core/trace_cache.hpp"
#include "core/trace_store.hpp"
#include "core/voltage_sim.hpp"
#include "pdn/package_model.hpp"
#include "workloads/kernels.hpp"
#include "workloads/spec_proxy.hpp"
#include "workloads/stressmark.hpp"

namespace {

using namespace vguard;
using namespace vguard::core;

/** Every scalar + histogram field must match bit for bit. */
void
expectSameSim(const VoltageSimResult &a, const VoltageSimResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.lowEmergencyCycles, b.lowEmergencyCycles);
    EXPECT_EQ(a.highEmergencyCycles, b.highEmergencyCycles);
    EXPECT_EQ(a.energyJ, b.energyJ); // bit-exact, same FP order
    EXPECT_EQ(a.avgPowerW, b.avgPowerW);
    EXPECT_EQ(a.minV, b.minV);
    EXPECT_EQ(a.maxV, b.maxV);
    ASSERT_EQ(a.voltageHist.bins(), b.voltageHist.bins());
    for (size_t i = 0; i < a.voltageHist.bins(); ++i)
        EXPECT_EQ(a.voltageHist.count(i), b.voltageHist.count(i));
}

// ------------------------------------------------------------- key

// ------------------------------------------------------- env knobs

/**
 * Regression tests for the strict VGUARD_TRACE_CACHE /
 * VGUARD_TRACE_CACHE_MB parsing bugfix. The old code fed the env text
 * to strtoull semantics: "-5" wrapped to a near-2^64 MB budget,
 * "10abc" silently dropped its tail, and any non-"0" toggle text
 * counted as "on". All of those must now be rejected (the singleton
 * then logs a warning and keeps its default).
 */
TEST(TraceCacheEnv, StrictSizeParsing)
{
    size_t mb = 0;
    EXPECT_TRUE(parseTraceCacheMb("0", mb));
    EXPECT_EQ(mb, 0u);
    EXPECT_TRUE(parseTraceCacheMb("1024", mb));
    EXPECT_EQ(mb, 1024u);
    EXPECT_TRUE(parseTraceCacheMb("9999999", mb));
    EXPECT_EQ(mb, 9999999u);

    mb = 77;
    EXPECT_FALSE(parseTraceCacheMb("", mb));
    EXPECT_FALSE(parseTraceCacheMb("-5", mb));
    EXPECT_FALSE(parseTraceCacheMb("+5", mb));
    EXPECT_FALSE(parseTraceCacheMb("10abc", mb));
    EXPECT_FALSE(parseTraceCacheMb("abc10", mb));
    EXPECT_FALSE(parseTraceCacheMb(" 10", mb));
    EXPECT_FALSE(parseTraceCacheMb("10 ", mb));
    EXPECT_FALSE(parseTraceCacheMb("1e3", mb));
    EXPECT_FALSE(parseTraceCacheMb("0x10", mb));
    // Over the 7-digit cap: would overflow the MB→byte conversion.
    EXPECT_FALSE(parseTraceCacheMb("18446744073709551615", mb));
    EXPECT_FALSE(parseTraceCacheMb("10000000", mb));
    EXPECT_EQ(mb, 77u) << "rejected text must leave the value alone";
}

TEST(TraceCacheEnv, StrictEnableParsing)
{
    bool on = false;
    EXPECT_TRUE(parseTraceCacheEnabled("1", on));
    EXPECT_TRUE(on);
    EXPECT_TRUE(parseTraceCacheEnabled("on", on));
    EXPECT_TRUE(on);
    EXPECT_TRUE(parseTraceCacheEnabled("true", on));
    EXPECT_TRUE(on);
    EXPECT_TRUE(parseTraceCacheEnabled("0", on));
    EXPECT_FALSE(on);
    on = true;
    EXPECT_TRUE(parseTraceCacheEnabled("off", on));
    EXPECT_FALSE(on);
    on = true;
    EXPECT_TRUE(parseTraceCacheEnabled("false", on));
    EXPECT_FALSE(on);

    on = true;
    EXPECT_FALSE(parseTraceCacheEnabled("", on));
    EXPECT_FALSE(parseTraceCacheEnabled("maybe", on));
    EXPECT_FALSE(parseTraceCacheEnabled("ON", on));
    EXPECT_FALSE(parseTraceCacheEnabled("True", on));
    EXPECT_FALSE(parseTraceCacheEnabled("yes", on));
    EXPECT_FALSE(parseTraceCacheEnabled("2", on));
    EXPECT_TRUE(on) << "rejected text must leave the value alone";
}

TEST(TraceKey, DistinguishesEveryComponent)
{
    const Machine m = referenceMachine();
    const isa::Program pa = workloads::buildSpecProxy("gzip");
    const isa::Program pb = workloads::buildSpecProxy("swim");

    const std::string base = traceKey(pa, m.cpu, m.power, 1000, ~0ull);
    EXPECT_EQ(base, traceKey(pa, m.cpu, m.power, 1000, ~0ull));

    EXPECT_NE(base, traceKey(pb, m.cpu, m.power, 1000, ~0ull));
    EXPECT_NE(base, traceKey(pa, m.cpu, m.power, 1001, ~0ull));
    EXPECT_NE(base, traceKey(pa, m.cpu, m.power, 1000, 500));

    cpu::CpuConfig cpu2 = m.cpu;
    cpu2.issueWidth += 1;
    EXPECT_NE(base, traceKey(pa, cpu2, m.power, 1000, ~0ull));

    power::PowerConfig pw2 = m.power;
    pw2.gatedFrac *= 1.5;
    EXPECT_NE(base, traceKey(pa, m.cpu, pw2, 1000, ~0ull));
}

// ---------------------------------------------------- replay identity

/**
 * Full-core open-loop run with capture, then replays at several block
 * sizes (1 = the per-cycle path, 7 = a misaligned block, the default,
 * and one bigger than the whole trace). Everything — scalars,
 * histogram, stats snapshot, emergency-event log — must be
 * byte-identical.
 */
void
replayIdentity(bool useConvolution)
{
    RunSpec rs;
    rs.controllerEnabled = false;
    rs.useConvolution = useConvolution;
    rs.maxCycles = 4000;
    const VoltageSimConfig cfg = makeSimConfig(rs);
    const isa::Program prog = workloads::buildSpecProxy("ammp");

    CapturedTrace trace;
    VoltageSim full(cfg, prog);
    const VoltageSimResult ref =
        full.run(rs.maxCycles, rs.maxInsts, &trace);
    ASSERT_EQ(trace.amps.size(), ref.cycles);
    ASSERT_EQ(trace.activity.size(), trace.amps.size());
    EXPECT_EQ(trace.committed, ref.committed);

    for (size_t block :
         {size_t{1}, size_t{7}, VoltageSim::kBlockCycles,
          size_t{100000}}) {
        VoltageSim sim(cfg, prog);
        const VoltageSimResult rep = sim.runReplay(trace, block);
        expectSameSim(ref, rep);
        EXPECT_EQ(ref.stats.json(), rep.stats.json())
            << "block=" << block;
        EXPECT_EQ(ref.events.jsonl(), rep.events.jsonl())
            << "block=" << block;
    }
}

TEST(TraceReplay, MatchesFullRunStateSpace)
{
    replayIdentity(false);
}

TEST(TraceReplay, MatchesFullRunConvolution)
{
    replayIdentity(true);
}

TEST(TraceReplay, ReusableAcrossPackages)
{
    // The point of excluding the package from the key: one capture
    // replayed against a different impedance must equal that package's
    // own full-core run.
    RunSpec rs;
    rs.controllerEnabled = false;
    rs.maxCycles = 3000;
    rs.impedanceScale = 1.0;
    const isa::Program prog = workloads::buildSpecProxy("mcf");

    CapturedTrace trace;
    VoltageSim capSim(makeSimConfig(rs), prog);
    capSim.run(rs.maxCycles, rs.maxInsts, &trace);

    RunSpec other = rs;
    other.impedanceScale = 3.0;
    const VoltageSimConfig otherCfg = makeSimConfig(other);
    VoltageSim fullOther(otherCfg, prog);
    const VoltageSimResult ref = fullOther.run(other.maxCycles);
    VoltageSim repOther(otherCfg, prog);
    const VoltageSimResult rep = repOther.runReplay(trace);
    expectSameSim(ref, rep);
    EXPECT_EQ(ref.stats.json(), rep.stats.json());
    EXPECT_EQ(ref.events.jsonl(), rep.events.jsonl());
}

// --------------------------------------------- cache concurrency

TEST(TraceCacheConcurrency, ConcurrentFirstCallsCaptureOnce)
{
    TraceCache &tc = TraceCache::instance();
    tc.setEnabled(true);
    // A configured persistent store would serve this key from disk
    // (a hit instead of the capture this test counts) — disable it.
    TraceStore::instance().configure("", 0);
    // Warm the shared experiment caches first (the power-virus trace
    // seeded by referenceCurrentRange() counts as a capture), so the
    // deltas below belong to this test's key alone.
    referenceCurrentRange();

    const isa::Program prog = workloads::buildSpecProxy("gzip");
    RunSpec rs;
    rs.controllerEnabled = false;
    rs.maxCycles = 1717; // fresh key: no other test uses this limit

    const uint64_t capBefore = tc.captures();
    const uint64_t hitBefore = tc.hits();

    std::vector<VoltageSimResult> results(8);
    std::vector<std::thread> threads;
    for (size_t t = 0; t < results.size(); ++t)
        threads.emplace_back(
            [&, t] { results[t] = runWorkload(prog, rs); });
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(tc.captures() - capBefore, 1u)
        << "concurrent first calls must collapse to one capture";
    EXPECT_EQ(tc.hits() - hitBefore, 7u);

    // Capturer and replayers alike must equal a cache-bypassing run.
    tc.setEnabled(false);
    const VoltageSimResult full = runWorkload(prog, rs);
    tc.setEnabled(true);
    for (const auto &r : results) {
        expectSameSim(full, r);
        EXPECT_EQ(full.stats.json(), r.stats.json());
        EXPECT_EQ(full.events.jsonl(), r.events.jsonl());
    }
}

// ------------------------------------------------ campaign determinism

/**
 * Open-loop-heavy mix: two programs x three packages share one trace
 * key per program (the cross-package reuse case), both voltage
 * back-ends, plus one closed-loop job the cache must leave alone.
 */
std::vector<CampaignJob>
openLoopJobs()
{
    std::vector<CampaignJob> jobs;
    int i = 0;
    for (const char *name : {"gzip", "swim"})
        for (double scale : {1.0, 2.0, 3.0}) {
            RunSpec rs;
            rs.impedanceScale = scale;
            rs.controllerEnabled = false;
            rs.useConvolution = (i % 2) == 1;
            rs.maxCycles = 2503; // fresh cache key for this test
            jobs.push_back({std::string(name) + "-s" +
                                std::to_string(static_cast<int>(scale)),
                            workloads::buildSpecProxy(name), rs, false});
            ++i;
        }
    RunSpec ctl;
    ctl.controllerEnabled = true;
    ctl.delayCycles = 2;
    ctl.maxCycles = 2503;
    jobs.push_back(
        {"gzip-ctl", workloads::buildSpecProxy("gzip"), ctl, false});
    return jobs;
}

TEST(TraceCacheCampaign, ByteIdenticalAcrossThreadsAndCacheToggle)
{
    TraceCache &tc = TraceCache::instance();
    tc.setEnabled(true);
    // Store hits would replace the captures this test counts below.
    TraceStore::instance().configure("", 0);
    // Warm the lazy experiment caches (the virus-trace put counts as a
    // capture) so the deltas below belong to this campaign's keys.
    referenceCurrentRange();
    const uint64_t capBefore = tc.captures();
    const uint64_t hitBefore = tc.hits();

    CampaignEngine::Options base;
    base.campaignSeed = 0xabcdef;

    std::vector<CampaignResult> results;
    for (unsigned threads : {1u, 2u, 8u}) {
        CampaignEngine::Options o = base;
        o.threads = threads;
        results.push_back(CampaignEngine(o).run(openLoopJobs()));
    }
    for (size_t r = 1; r < results.size(); ++r) {
        EXPECT_EQ(results[r].jsonl(), results[0].jsonl());
        EXPECT_EQ(results[r].mergedStats.json(),
                  results[0].mergedStats.json());
        EXPECT_EQ(results[r].eventsJsonl(), results[0].eventsJsonl());
    }

    // Two distinct keys (gzip/swim at 2503 cycles); the other 16
    // open-loop legs replayed — proof the fast path actually engaged.
    EXPECT_EQ(tc.captures() - capBefore, 2u);
    EXPECT_EQ(tc.hits() - hitBefore, 16u);

    // Cache off: every leg is a fresh full-core run — same bytes.
    tc.setEnabled(false);
    CampaignEngine::Options o = base;
    o.threads = 2;
    const CampaignResult off = CampaignEngine(o).run(openLoopJobs());
    tc.setEnabled(true);
    EXPECT_EQ(off.jsonl(), results[0].jsonl());
    EXPECT_EQ(off.mergedStats.json(), results[0].mergedStats.json());
    EXPECT_EQ(off.eventsJsonl(), results[0].eventsJsonl());
}

// --------------------------------------------------- golden (cache on)

TEST(TraceCacheGolden, MiniCampaignUnchangedWithCacheEnabled)
{
    if (std::getenv("VGUARD_UPDATE_GOLDEN"))
        GTEST_SKIP() << "golden being regenerated by test_campaign";

    // Same pinned mini-campaign as Golden.MiniCampaignJsonl, with the
    // trace cache force-enabled: replaying the uncontrolled leg must
    // not move a byte of the committed artifact.
    TraceCache &tc = TraceCache::instance();
    tc.setEnabled(true);

    const auto cal = workloads::StressmarkBuilder::calibrate(
        pdn::PackageModel(referencePackage(2.0)).resonantPeriodCycles(),
        referenceMachine().cpu);
    const auto stress = workloads::StressmarkBuilder::build(cal.params);

    RunSpec uncontrolled;
    uncontrolled.impedanceScale = 2.0;
    uncontrolled.controllerEnabled = false;
    uncontrolled.maxCycles = 3000;

    RunSpec ideal = uncontrolled;
    ideal.controllerEnabled = true;
    ideal.delayCycles = 2;
    ideal.actuator = ActuatorKind::Ideal;

    RunSpec noisy = ideal;
    noisy.sensorError = 0.005;
    noisy.actuator = ActuatorKind::FuDl1Il1;

    std::vector<CampaignJob> jobs{
        {"stressmark-uncontrolled", stress, uncontrolled, false},
        {"stressmark-ideal-d2", stress, ideal, false},
        {"stressmark-noisy-fu3-d2", stress, noisy, false},
    };

    CampaignEngine::Options o;
    o.threads = 2;
    o.campaignSeed = 0xc0ffee;
    const std::string actual =
        CampaignEngine(o).run(std::move(jobs)).jsonl();

    const std::string goldenPath =
        std::string(VGUARD_GOLDEN_DIR) + "/mini_campaign.jsonl";
    std::ifstream in(goldenPath, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden " << goldenPath
        << " — generate with VGUARD_UPDATE_GOLDEN=1 ./test_campaign";
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), actual);
}

// ----------------------------------- back-to-back run() continuity

/**
 * Two run(N) calls on one sim must continue the voltage back-end's
 * state exactly where the first left off: per-cycle voltages (pinned
 * via exact histogram-count sums, min/max and emergency counts) match
 * a single run(2N) on a fresh sim. With useConvolution this is the
 * PartitionedConvolver reuse-across-runs property — the second run
 * resumes mid-frame in the overlap-save pipeline.
 */
void
backToBackContinuity(bool useConvolution)
{
    RunSpec rs;
    rs.controllerEnabled = false;
    rs.useConvolution = useConvolution;
    const VoltageSimConfig cfg = makeSimConfig(rs);
    const isa::Program prog = workloads::phasedKernel(400);
    const uint64_t half = 1500; // not a multiple of any block size

    VoltageSim split(cfg, prog);
    const VoltageSimResult r1 = split.run(half);
    const VoltageSimResult r2 = split.run(half);
    ASSERT_EQ(r1.cycles, half);
    ASSERT_EQ(r2.cycles, half);

    VoltageSim whole(cfg, prog);
    const VoltageSimResult full = whole.run(2 * half);
    ASSERT_EQ(full.cycles, 2 * half);

    // Exact per-cycle voltage agreement, observed through integer
    // aggregates (bin counts bucket every cycle's exact voltage).
    ASSERT_EQ(full.voltageHist.bins(), r1.voltageHist.bins());
    for (size_t i = 0; i < full.voltageHist.bins(); ++i)
        EXPECT_EQ(full.voltageHist.count(i),
                  r1.voltageHist.count(i) + r2.voltageHist.count(i))
            << "bin " << i;
    EXPECT_EQ(full.minV, std::min(r1.minV, r2.minV));
    EXPECT_EQ(full.maxV, std::max(r1.maxV, r2.maxV));
    EXPECT_EQ(full.lowEmergencyCycles,
              r1.lowEmergencyCycles + r2.lowEmergencyCycles);
    EXPECT_EQ(full.highEmergencyCycles,
              r1.highEmergencyCycles + r2.highEmergencyCycles);
    // committed is cumulative core state, energy a split FP sum.
    EXPECT_EQ(full.committed, r2.committed);
    EXPECT_NEAR(full.energyJ, r1.energyJ + r2.energyJ,
                1e-12 * full.energyJ);
}

TEST(RunContinuity, BackToBackRunsMatchOneLongRunStateSpace)
{
    backToBackContinuity(false);
}

TEST(RunContinuity, BackToBackRunsMatchOneLongRunConvolution)
{
    backToBackContinuity(true);
}

} // namespace
