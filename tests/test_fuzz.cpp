/**
 * @file
 * Randomised pipeline fuzzing: generate structured random VRISC
 * programs (arithmetic, memory traffic, counted loops, calls) and
 * assert end-to-end invariants of the out-of-order core against the
 * pure functional executor:
 *
 *  - the core halts (no deadlock/livelock) and commits exactly the
 *    dynamic instruction count the executor retires;
 *  - architectural state matches between a plain run and a run with
 *    aggressive random gating/phantom/throttle interference (the
 *    controller must never corrupt execution);
 *  - activity accounting stays consistent with the aggregate stats.
 */

#include <gtest/gtest.h>

#include "cpu/core.hpp"
#include "isa/executor.hpp"
#include "isa/program.hpp"
#include "pdn/pdn_backend.hpp"
#include "pdn/package_model.hpp"
#include "util/rng.hpp"

namespace {

using namespace vguard;
using namespace vguard::isa;

/**
 * Structured random program: a few counted loops over blocks of random
 * arithmetic/memory/call work. Always terminates.
 */
Program
randomProgram(uint64_t seed)
{
    Rng rng(seed);
    ProgramBuilder b;

    // Fixed scaffolding registers: r1 data pointer, r2 const 1,
    // r3.. scratch pool, r20/r21 loop counters.
    b.ldiq(1, 0x20000).ldiq(2, 1);
    for (unsigned r = 3; r <= 14; ++r)
        b.ldiq(r, static_cast<int64_t>(rng.next() >> 8));
    for (unsigned f = 1; f <= 6; ++f)
        b.ldit(f, 1.0 + 0.25 * static_cast<double>(f));

    const unsigned loops = 1 + rng.below(3);
    unsigned label = 0;
    bool emittedCallee = false;

    for (unsigned l = 0; l < loops; ++l) {
        const unsigned iters = 2 + rng.below(30);
        const unsigned counter = 20 + (l % 2);
        char top[16];
        std::snprintf(top, sizeof(top), ".L%u", label++);
        b.ldiq(counter, iters);
        b.label(top);

        const unsigned blockLen = 4 + rng.below(24);
        for (unsigned i = 0; i < blockLen; ++i) {
            const unsigned rd = 3 + rng.below(12);
            const unsigned ra = 3 + rng.below(12);
            const unsigned rb = 3 + rng.below(12);
            switch (rng.below(12)) {
              case 0: b.addq(rd, ra, rb); break;
              case 1: b.subq(rd, ra, rb); break;
              case 2: b.xor_(rd, ra, rb); break;
              case 3: b.and_(rd, ra, rb); break;
              case 4: b.mulq(rd, ra, rb); break;
              case 5: b.divq(rd, ra, rb); break;
              case 6: b.cmovne(rd, ra, rb); break;
              case 7:
                b.ldq(rd, 1, 8 * static_cast<int64_t>(rng.below(64)));
                break;
              case 8:
                b.stq(ra, 1, 8 * static_cast<int64_t>(rng.below(64)));
                break;
              case 9: {
                const unsigned fd = 1 + rng.below(8);
                const unsigned fa = 1 + rng.below(8);
                if (rng.chance(0.5))
                    b.addt(fd, fa, 2);
                else
                    b.mult(fd, fa, 1);
                break;
              }
              case 10:
                b.ldt(1 + rng.below(8), 1,
                      8 * static_cast<int64_t>(rng.below(64)));
                break;
              default:
                b.stt(1 + rng.below(8), 1,
                      8 * static_cast<int64_t>(rng.below(64)));
                break;
            }
        }
        if (rng.chance(0.5)) {
            b.call("callee");
            emittedCallee = true;
        }
        b.subq(counter, counter, 2);
        b.bne(counter, top);
    }
    b.halt();
    if (emittedCallee) {
        b.label("callee").xor_(15, 3, 4).addq(16, 15, 2).ret();
    } else {
        // Keep the label table stable for determinism checks.
        b.label("callee").ret();
    }
    return b.build();
}

// Dynamic instruction count of the reference executor.
uint64_t
referenceCount(const Program &p, uint64_t guard = 5'000'000)
{
    Executor ex(p);
    while (!ex.halted() && ex.instsExecuted() < guard)
        ex.step();
    EXPECT_TRUE(ex.halted()) << "reference executor did not halt";
    return ex.instsExecuted();
}

class FuzzSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FuzzSweep, CoreCommitsExactlyTheDynamicStream)
{
    const Program p = randomProgram(GetParam());
    const uint64_t expect = referenceCount(p);

    cpu::OoOCore core(cpu::CpuConfig{}, p);
    while (!core.halted() && core.now() < 20'000'000)
        core.cycle();
    ASSERT_TRUE(core.halted()) << "core deadlocked (seed "
                               << GetParam() << ")";
    EXPECT_EQ(core.stats().committed, expect);
    EXPECT_EQ(core.stats().dispatched, core.stats().committed);
}

TEST_P(FuzzSweep, RandomInterferencePreservesExecution)
{
    const Program p = randomProgram(GetParam());
    const uint64_t expect = referenceCount(p);

    cpu::OoOCore core(cpu::CpuConfig{}, p);
    Rng rng(GetParam() ^ 0xabcdef);
    uint64_t sameGateStreak = 0;
    while (!core.halted() && core.now() < 40'000'000) {
        // Randomly gate/phantom/throttle, but never gate forever.
        if (sameGateStreak > 300 || rng.chance(0.05)) {
            core.setGates({});
            core.setPhantom({});
            core.setIssueLimit(~0u);
            sameGateStreak = 0;
        } else if (rng.chance(0.05)) {
            core.setGates({rng.chance(0.5), rng.chance(0.5),
                           rng.chance(0.5)});
            core.setPhantom({rng.chance(0.3), false, false});
            core.setIssueLimit(static_cast<unsigned>(rng.below(9)));
        }
        ++sameGateStreak;
        core.cycle();
    }
    ASSERT_TRUE(core.halted()) << "interfered core deadlocked (seed "
                               << GetParam() << ")";
    // Gating must stall, never drop or duplicate instructions.
    EXPECT_EQ(core.stats().committed, expect);
}

TEST_P(FuzzSweep, ActivitySumsMatchStats)
{
    const Program p = randomProgram(GetParam());
    cpu::OoOCore core(cpu::CpuConfig{}, p);
    uint64_t fetched = 0, committed = 0, dispatched = 0;
    while (!core.halted() && core.now() < 20'000'000) {
        const auto &av = core.cycle();
        fetched += av.fetched;
        committed += av.committed;
        dispatched += av.dispatched;
        EXPECT_LE(av.committed, core.config().commitWidth);
        EXPECT_LE(av.dispatched, core.config().decodeWidth);
        EXPECT_LE(av.fetched, core.config().fetchWidth);
    }
    ASSERT_TRUE(core.halted());
    EXPECT_EQ(fetched, core.stats().fetched);
    EXPECT_EQ(committed, core.stats().committed);
    EXPECT_EQ(dispatched, core.stats().dispatched);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34,
                                           55, 89, 144, 233));

// ----------------------------------------------- PDN backend fuzzing

/**
 * Fuzz lane for the batched PDN backend (ISSUE 6): random trace
 * lengths, lane counts and — the part unit grids under-cover — random
 * *block boundaries*, pushed through both backends. Asserts exact
 * agreement everywhere; out-of-bounds lane padding or scratch misuse
 * surfaces under the ASan/UBSan CI runs of this suite.
 */
class BackendFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(BackendFuzz, RandomTracesAndBlockBoundariesNeverDiverge)
{
    Rng rng(GetParam() * 0x9e3779b97f4a7c15ull + 7);

    const size_t k = 1 + rng.below(9);
    std::vector<pdn::LaneConfig> lanes;
    for (size_t i = 0; i < k; ++i)
        lanes.push_back({pdn::PackageModel::design(
                             rng.uniform(30e6, 150e6),
                             rng.uniform(0.8e-3, 4e-3))
                             .params(),
                         rng.uniform(0.0, 30.0)});

    std::vector<double> amps(1 + rng.below(5000));
    for (double &a : amps)
        a = rng.uniform(0.0, 60.0);

    // Scalar reference: one unblocked pass.
    const auto scalar = pdn::makeScalarBackend(lanes);
    std::vector<double> ref(amps.size() * k);
    scalar->stepShared(amps.data(), amps.size(), ref.data());

    // Batched: the same trace fed in randomly-sized chunks (state must
    // carry across stepShared calls exactly).
    const auto batched = pdn::makeBatchedBackend(lanes);
    std::vector<double> got(amps.size() * k);
    size_t done = 0;
    while (done < amps.size()) {
        const size_t chunk =
            std::min<size_t>(1 + rng.below(300), amps.size() - done);
        batched->stepShared(amps.data() + done, chunk,
                            got.data() + done * k);
        done += chunk;
    }

    for (size_t i = 0; i < ref.size(); ++i)
        ASSERT_EQ(ref[i], got[i])
            << "cycle " << i / k << " lane " << i % k;

    // Interleave per-cycle stepping on both, continuing from the
    // streamed state — the two entry points must compose.
    std::vector<double> cur(k), vs(k), vb(k);
    for (size_t cyc = 0; cyc < 64; ++cyc) {
        for (size_t lane = 0; lane < k; ++lane)
            cur[lane] = rng.uniform(0.0, 60.0);
        scalar->stepCycle(cur.data(), vs.data());
        batched->stepCycle(cur.data(), vb.data());
        for (size_t lane = 0; lane < k; ++lane)
            ASSERT_EQ(vs[lane], vb[lane])
                << "post-stream cycle " << cyc << " lane " << lane;
    }
}

TEST_P(BackendFuzz, PerLaneTracesAndBlockBoundariesNeverDiverge)
{
    Rng rng(GetParam() * 0x9e3779b97f4a7c15ull + 11);

    const size_t k = 1 + rng.below(9);
    std::vector<pdn::LaneConfig> lanes;
    for (size_t i = 0; i < k; ++i)
        lanes.push_back({pdn::PackageModel::design(
                             rng.uniform(30e6, 150e6),
                             rng.uniform(0.8e-3, 4e-3))
                             .params(),
                         rng.uniform(0.0, 30.0)});

    // Cycle-major per-lane traces: every lane gets its own stream.
    const size_t cycles = 1 + rng.below(5000);
    std::vector<double> amps(cycles * k);
    for (double &a : amps)
        a = rng.uniform(0.0, 60.0);

    // Scalar reference: per-cycle stepping (the simplest entry point).
    const auto scalar = pdn::makeScalarBackend(lanes);
    std::vector<double> ref(amps.size());
    for (size_t cyc = 0; cyc < cycles; ++cyc)
        scalar->stepCycle(amps.data() + cyc * k, ref.data() + cyc * k);

    // Batched stepPerLane fed in randomly-sized chunks (state must
    // carry across calls exactly).
    const auto batched = pdn::makeBatchedBackend(lanes);
    std::vector<double> got(amps.size());
    size_t done = 0;
    while (done < cycles) {
        const size_t chunk =
            std::min<size_t>(1 + rng.below(300), cycles - done);
        batched->stepPerLane(amps.data() + done * k, chunk,
                             got.data() + done * k);
        done += chunk;
    }

    for (size_t i = 0; i < ref.size(); ++i)
        ASSERT_EQ(ref[i], got[i])
            << "cycle " << i / k << " lane " << i % k;

    // Interleave the three entry points on both backends, continuing
    // from the streamed state — they all must compose.
    std::vector<double> cur(k), vs(k), vb(k);
    for (size_t round = 0; round < 16; ++round) {
        for (size_t lane = 0; lane < k; ++lane)
            cur[lane] = rng.uniform(0.0, 60.0);
        scalar->stepCycle(cur.data(), vs.data());
        batched->stepPerLane(cur.data(), 1, vb.data());
        for (size_t lane = 0; lane < k; ++lane)
            ASSERT_EQ(vs[lane], vb[lane])
                << "post-stream round " << round << " lane " << lane;

        const double shared = rng.uniform(0.0, 60.0);
        scalar->stepShared(&shared, 1, vs.data());
        batched->stepShared(&shared, 1, vb.data());
        for (size_t lane = 0; lane < k; ++lane)
            ASSERT_EQ(vs[lane], vb[lane])
                << "post-stream shared round " << round << " lane "
                << lane;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34,
                                           55, 89));

} // namespace
