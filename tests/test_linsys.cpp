/**
 * @file
 * Unit and property tests for src/linsys: Mat2 algebra, matrix
 * exponential, ZOH discretisation, signal builders and the bang-bang
 * worst-case analysis.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "linsys/fft.hpp"
#include "linsys/mat2.hpp"
#include "linsys/state_space.hpp"
#include "linsys/worst_case.hpp"
#include "util/rng.hpp"

namespace {

using namespace vguard::linsys;

TEST(Mat2, Arithmetic)
{
    const Mat2 a{1, 2, 3, 4};
    const Mat2 b{5, 6, 7, 8};
    const Mat2 sum = a + b;
    EXPECT_DOUBLE_EQ(sum.a, 6);
    EXPECT_DOUBLE_EQ(sum.d, 12);
    const Mat2 prod = a * b;
    EXPECT_DOUBLE_EQ(prod.a, 19);
    EXPECT_DOUBLE_EQ(prod.b, 22);
    EXPECT_DOUBLE_EQ(prod.c, 43);
    EXPECT_DOUBLE_EQ(prod.d, 50);
}

TEST(Mat2, VectorProduct)
{
    const Mat2 a{1, 2, 3, 4};
    const Vec2 v = a * Vec2{1.0, -1.0};
    EXPECT_DOUBLE_EQ(v.x, -1.0);
    EXPECT_DOUBLE_EQ(v.y, -1.0);
}

TEST(Mat2, TraceDet)
{
    const Mat2 a{2, 1, 1, 3};
    EXPECT_DOUBLE_EQ(a.trace(), 5.0);
    EXPECT_DOUBLE_EQ(a.det(), 5.0);
}

TEST(Mat2, InverseRoundTrip)
{
    const Mat2 a{2, 1, 1, 3};
    const Mat2 id = a * a.inverse();
    EXPECT_NEAR(id.a, 1.0, 1e-14);
    EXPECT_NEAR(id.b, 0.0, 1e-14);
    EXPECT_NEAR(id.c, 0.0, 1e-14);
    EXPECT_NEAR(id.d, 1.0, 1e-14);
}

TEST(Mat2, ExpmOfZeroIsIdentity)
{
    const Mat2 e = expm(Mat2::zero());
    EXPECT_NEAR(e.a, 1.0, 1e-15);
    EXPECT_NEAR(e.b, 0.0, 1e-15);
    EXPECT_NEAR(e.d, 1.0, 1e-15);
}

TEST(Mat2, ExpmDiagonal)
{
    const Mat2 m{1.0, 0.0, 0.0, -2.0};
    const Mat2 e = expm(m);
    EXPECT_NEAR(e.a, std::exp(1.0), 1e-12);
    EXPECT_NEAR(e.d, std::exp(-2.0), 1e-12);
    EXPECT_NEAR(e.b, 0.0, 1e-13);
    EXPECT_NEAR(e.c, 0.0, 1e-13);
}

TEST(Mat2, ExpmRotation)
{
    // exp([[0,-w],[w,0]] t) is a rotation by w*t.
    const double w = 3.0;
    const Mat2 e = expm(Mat2{0.0, -w, w, 0.0});
    EXPECT_NEAR(e.a, std::cos(w), 1e-12);
    EXPECT_NEAR(e.b, -std::sin(w), 1e-12);
    EXPECT_NEAR(e.c, std::sin(w), 1e-12);
    EXPECT_NEAR(e.d, std::cos(w), 1e-12);
}

TEST(Mat2, ExpmLargeArgumentScales)
{
    const Mat2 e = expm(Mat2{-100.0, 0.0, 0.0, -100.0});
    EXPECT_NEAR(e.a, std::exp(-100.0), 1e-50);
}

TEST(Mat2, ExpmSumProperty)
{
    // For commuting matrices (same matrix halves): exp(M) =
    // exp(M/2)^2.
    const Mat2 m{-0.3, 1.2, -0.7, 0.1};
    const Mat2 whole = expm(m);
    const Mat2 half = expm(m * 0.5);
    const Mat2 sq = half * half;
    EXPECT_NEAR(whole.a, sq.a, 1e-12);
    EXPECT_NEAR(whole.b, sq.b, 1e-12);
    EXPECT_NEAR(whole.c, sq.c, 1e-12);
    EXPECT_NEAR(whole.d, sq.d, 1e-12);
}

// A simple scalar-like test system: two decoupled first-order lags.
StateSpace2
decoupledLags(double tau1, double tau2)
{
    StateSpace2 ss;
    ss.a = {-1.0 / tau1, 0.0, 0.0, -1.0 / tau2};
    ss.b = {1.0 / tau1, 0.0, 0.0, 1.0 / tau2};
    ss.c = {1.0, 1.0};
    ss.d = {0.0, 0.0};
    return ss;
}

TEST(StateSpace, ZohMatchesAnalyticFirstOrder)
{
    // Single lag x' = (-x + u)/tau discretised with ZOH:
    // x[k+1] = a x[k] + (1-a) u with a = exp(-dt/tau).
    const double tau = 2.0, dt = 0.1;
    const auto dss = DiscreteStateSpace2::zoh(decoupledLags(tau, 1.0), dt);
    const double a = std::exp(-dt / tau);
    EXPECT_NEAR(dss.ad().a, a, 1e-12);
    EXPECT_NEAR(dss.bd().a, 1.0 - a, 1e-12);
}

TEST(StateSpace, StepConvergesToDcGain)
{
    const auto dss =
        DiscreteStateSpace2::zoh(decoupledLags(1.0, 3.0), 0.05);
    Vec2 x{0.0, 0.0};
    const Vec2 u{2.0, -1.0};
    for (int i = 0; i < 4000; ++i)
        x = dss.next(x, u);
    // DC: each lag settles to its input; y = x1 + x2 = 2 - 1 = 1.
    EXPECT_NEAR(dss.output(x, u), 1.0, 1e-9);
}

TEST(StateSpace, SimulateProducesPerStepOutputs)
{
    const auto dss =
        DiscreteStateSpace2::zoh(decoupledLags(1.0, 1.0), 0.1);
    Vec2 x{0.0, 0.0};
    const std::vector<Vec2> inputs(10, Vec2{1.0, 0.0});
    const auto ys = dss.simulate(x, inputs);
    ASSERT_EQ(ys.size(), 10u);
    EXPECT_DOUBLE_EQ(ys[0], 0.0);      // zero state, no feedthrough
    EXPECT_GT(ys[9], ys[1]);           // rising toward DC gain
}

TEST(StateSpace, SpectralRadiusStable)
{
    const auto dss =
        DiscreteStateSpace2::zoh(decoupledLags(1.0, 2.0), 0.1);
    EXPECT_LT(dss.spectralRadius(), 1.0);
    EXPECT_GT(dss.spectralRadius(), 0.0);
}

TEST(StateSpace, SpectralRadiusComplexPair)
{
    // Lightly damped oscillator has a complex eigenpair.
    StateSpace2 ss;
    ss.a = {-0.1, -10.0, 10.0, -0.1};
    ss.b = {1.0, 0.0, 0.0, 1.0};
    ss.c = {1.0, 0.0};
    ss.d = {0.0, 0.0};
    const auto dss = DiscreteStateSpace2::zoh(ss, 0.01);
    const double rho = dss.spectralRadius();
    EXPECT_NEAR(rho, std::exp(-0.1 * 0.01), 1e-9);
}

TEST(Signals, Constant)
{
    const auto s = constantSignal(5, 3.0);
    ASSERT_EQ(s.size(), 5u);
    for (double v : s)
        EXPECT_DOUBLE_EQ(v, 3.0);
}

TEST(Signals, Pulse)
{
    const auto s = pulseSignal(10, 1.0, 9.0, 3, 4);
    EXPECT_DOUBLE_EQ(s[2], 1.0);
    EXPECT_DOUBLE_EQ(s[3], 9.0);
    EXPECT_DOUBLE_EQ(s[6], 9.0);
    EXPECT_DOUBLE_EQ(s[7], 1.0);
}

TEST(Signals, PulseClampedToLength)
{
    const auto s = pulseSignal(5, 0.0, 1.0, 3, 10);
    EXPECT_DOUBLE_EQ(s[4], 1.0);
    EXPECT_EQ(s.size(), 5u);
}

TEST(Signals, PulseTrain)
{
    const auto s = pulseTrainSignal(12, 0.0, 1.0, 0, 2, 4);
    // Pattern: 1 1 0 0 | 1 1 0 0 | 1 1 0 0
    for (size_t t = 0; t < s.size(); ++t)
        EXPECT_DOUBLE_EQ(s[t], (t % 4) < 2 ? 1.0 : 0.0) << "t=" << t;
}

TEST(WorstCase, AllNegativeKernel)
{
    const std::vector<double> h{-1.0, -0.5, -0.25};
    const auto wc = bangBangWorstCase(h, 0.0, 2.0);
    EXPECT_DOUBLE_EQ(wc.minOutput, -3.5); // all taps at hi
    EXPECT_DOUBLE_EQ(wc.maxOutput, 0.0);  // all taps at lo
    for (double u : wc.minInput)
        EXPECT_DOUBLE_EQ(u, 2.0);
}

TEST(WorstCase, MixedSignKernel)
{
    const std::vector<double> h{-1.0, 0.5};
    const auto wc = bangBangWorstCase(h, 1.0, 3.0);
    // min: -1*3 + 0.5*1 = -2.5 ; max: -1*1 + 0.5*3 = 0.5
    EXPECT_DOUBLE_EQ(wc.minOutput, -2.5);
    EXPECT_DOUBLE_EQ(wc.maxOutput, 0.5);
    // Input sequence is time-reversed kernel sign pattern: u[0] pairs
    // with h[1].
    EXPECT_DOUBLE_EQ(wc.minInput[0], 1.0);
    EXPECT_DOUBLE_EQ(wc.minInput[1], 3.0);
}

TEST(WorstCase, ReplayAchievesBound)
{
    // Convolving the extremal input with the kernel must reproduce the
    // reported extreme at the final sample.
    const std::vector<double> h{-1.0, 0.7, -0.3, 0.1};
    const auto wc = bangBangWorstCase(h, -2.0, 5.0);
    double y = 0.0;
    const size_t k = h.size();
    for (size_t j = 0; j < k; ++j)
        y += h[j] * wc.minInput[k - 1 - j];
    EXPECT_NEAR(y, wc.minOutput, 1e-12);
}

TEST(WorstCase, DegenerateEqualBounds)
{
    const std::vector<double> h{-1.0, 0.5};
    const auto wc = bangBangWorstCase(h, 2.0, 2.0);
    EXPECT_DOUBLE_EQ(wc.minOutput, wc.maxOutput);
    EXPECT_DOUBLE_EQ(wc.minOutput, -1.0); // (-1+0.5)*2
}

TEST(WorstCase, L1Norm)
{
    EXPECT_DOUBLE_EQ(l1Norm({1.0, -2.0, 3.0}), 6.0);
    EXPECT_DOUBLE_EQ(l1Norm({}), 0.0);
}

TEST(WorstCase, ResonantSquareWave)
{
    const auto s = resonantSquareWave(8, 2, 0.0, 1.0);
    const std::vector<double> expect{1, 1, 0, 0, 1, 1, 0, 0};
    for (size_t i = 0; i < s.size(); ++i)
        EXPECT_DOUBLE_EQ(s[i], expect[i]);
}

// Property sweep: ZOH discretisation of a stable oscillator stays
// stable and matches a fine-step Euler integration.
class ZohSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(ZohSweep, MatchesFineEuler)
{
    const double wn = GetParam(); // natural frequency [rad/s]
    StateSpace2 ss;
    const double zeta = 0.3;
    // Canonical second-order: x1' = x2, x2' = -wn^2 x1 - 2 zeta wn x2 + u
    ss.a = {0.0, 1.0, -wn * wn, -2.0 * zeta * wn};
    ss.b = {0.0, 0.0, 1.0, 0.0};
    ss.c = {1.0, 0.0};
    ss.d = {0.0, 0.0};

    const double dt = 0.05 / wn;
    const auto dss = DiscreteStateSpace2::zoh(ss, dt);
    EXPECT_LT(dss.spectralRadius(), 1.0);

    // Integrate one coarse step with 1000 Euler substeps, constant u.
    const Vec2 u{1.0, 0.0};
    Vec2 x{0.2, -0.1};
    Vec2 fine = x;
    const int sub = 1000;
    const double h = dt / sub;
    for (int i = 0; i < sub; ++i)
        fine += (ss.a * fine + ss.b * u) * h;
    const Vec2 coarse = dss.next(x, u);
    EXPECT_NEAR(coarse.x, fine.x, 1e-3 * std::max(1.0, std::fabs(fine.x)));
    EXPECT_NEAR(coarse.y, fine.y, 1e-3 * std::max(1.0, std::fabs(fine.y)));
}

INSTANTIATE_TEST_SUITE_P(Frequencies, ZohSweep,
                         ::testing::Values(0.5, 2.0, 10.0, 100.0, 1e4,
                                           1e6));

// ---------------------------------------------------------------- fft

TEST(Fft, NextPow2)
{
    EXPECT_EQ(nextPow2(0), 1u);
    EXPECT_EQ(nextPow2(1), 1u);
    EXPECT_EQ(nextPow2(2), 2u);
    EXPECT_EQ(nextPow2(3), 4u);
    EXPECT_EQ(nextPow2(128), 128u);
    EXPECT_EQ(nextPow2(129), 256u);
}

TEST(Fft, RejectsNonPowerOfTwo)
{
    EXPECT_EXIT(FftPlan{12}, ::testing::ExitedWithCode(1),
                "power of two");
}

TEST(Fft, RoundTripRecoversInput)
{
    for (size_t n : {size_t{1}, size_t{2}, size_t{8}, size_t{256}}) {
        FftPlan plan(n);
        vguard::Rng rng(n);
        std::vector<std::complex<double>> x(n), orig;
        for (auto &v : x)
            v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
        orig = x;
        plan.forward(x.data());
        plan.inverse(x.data());
        for (size_t i = 0; i < n; ++i) {
            EXPECT_NEAR(x[i].real(), orig[i].real(), 1e-12) << i;
            EXPECT_NEAR(x[i].imag(), orig[i].imag(), 1e-12) << i;
        }
    }
}

TEST(Fft, MatchesNaiveDft)
{
    const size_t n = 16;
    FftPlan plan(n);
    vguard::Rng rng(99);
    std::vector<std::complex<double>> x(n);
    for (auto &v : x)
        v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    auto fast = x;
    plan.forward(fast.data());
    for (size_t k = 0; k < n; ++k) {
        std::complex<double> sum = 0.0;
        for (size_t t = 0; t < n; ++t) {
            const double ang = -2.0 * M_PI * static_cast<double>(k * t) /
                               static_cast<double>(n);
            sum += x[t] * std::complex<double>(std::cos(ang),
                                               std::sin(ang));
        }
        EXPECT_NEAR(fast[k].real(), sum.real(), 1e-12) << k;
        EXPECT_NEAR(fast[k].imag(), sum.imag(), 1e-12) << k;
    }
}

TEST(Fft, CircularConvolutionTheorem)
{
    // FFT-domain pointwise product must equal direct circular
    // convolution — the exact property the partitioned convolver's
    // overlap-save blocks rely on.
    const size_t n = 32;
    FftPlan plan(n);
    vguard::Rng rng(7);
    std::vector<double> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
        a[i] = rng.uniform(-2.0, 2.0);
        b[i] = rng.uniform(-2.0, 2.0);
    }
    std::vector<std::complex<double>> fa(a.begin(), a.end());
    std::vector<std::complex<double>> fb(b.begin(), b.end());
    plan.forward(fa.data());
    plan.forward(fb.data());
    for (size_t i = 0; i < n; ++i)
        fa[i] *= fb[i];
    plan.inverse(fa.data());
    for (size_t i = 0; i < n; ++i) {
        double direct = 0.0;
        for (size_t k = 0; k < n; ++k)
            direct += a[k] * b[(i + n - k) % n];
        EXPECT_NEAR(fa[i].real(), direct, 1e-12) << i;
        EXPECT_NEAR(fa[i].imag(), 0.0, 1e-12) << i;
    }
}

} // namespace
