/**
 * @file
 * Unit, integration and property tests for src/pdn: package design,
 * impedance analysis, discrete simulation, impulse/convolution
 * equivalence, target-impedance calibration and the ITRS data.
 */

#include <algorithm>
#include <atomic>
#include <cmath>
#include <complex>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "linsys/worst_case.hpp"
#include "pdn/impulse.hpp"
#include "pdn/partitioned_convolver.hpp"
#include "pdn/itrs.hpp"
#include "pdn/package_model.hpp"
#include "pdn/pdn_sim.hpp"
#include "pdn/target_impedance.hpp"
#include "util/rng.hpp"

// ------------------------------------------------ allocation accounting
//
// Counting replacement for the global allocator, backing the
// "allocation-free after warm-up" regression guards below: the batch
// helpers (PdnSim::stepMany / DiscreteStateSpaceN::stepBlock2) and the
// convolver step paths sit inside per-cycle simulation loops, so a
// reintroduced per-call heap allocation is a real perf regression,
// not a style nit.

namespace {
std::atomic<std::uint64_t> gAllocCount{0};
}

// GCC pairs new-expressions at call sites with the visible free()-based
// operator delete and warns; replacing the global allocator with
// malloc/free in one TU is well-defined, so the warning is spurious.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void *
operator new(std::size_t n)
{
    gAllocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc{};
}

void *
operator new[](std::size_t n)
{
    return operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

using namespace vguard::pdn;

PackageModel
reference()
{
    // Paper-style package: 50 MHz resonance, 1 mΩ peak, 0.5 mΩ DC.
    return PackageModel::design(50e6, 1e-3);
}

TEST(PackageDesign, DcResistance)
{
    const auto m = reference();
    EXPECT_NEAR(m.impedanceMag(0.0), 0.5e-3, 1e-9);
    EXPECT_NEAR(m.impedanceMag(1.0), 0.5e-3, 1e-7); // ~DC at 1 Hz
}

TEST(PackageDesign, HitsRequestedPeak)
{
    const auto m = reference();
    EXPECT_NEAR(m.peakImpedance(), 1e-3, 1e-3 * 1e-4);
}

TEST(PackageDesign, HitsRequestedResonance)
{
    const auto m = reference();
    EXPECT_NEAR(m.resonantFrequencyHz(), 50e6, 50e6 * 0.10);
    EXPECT_NEAR(m.naturalFrequencyHz(), 50e6, 50e6 * 1e-9);
}

TEST(PackageDesign, ResonantPeriodCycles)
{
    const auto m = reference();
    // 3 GHz / ~50 MHz = ~60 cycles (the paper's stressmark period).
    EXPECT_NEAR(m.resonantPeriodCycles(), 60u, 6u);
}

TEST(PackageDesign, ImpedanceFallsOffResonance)
{
    const auto m = reference();
    const double peak = m.peakImpedance();
    EXPECT_LT(m.impedanceMag(5e6), peak);
    EXPECT_LT(m.impedanceMag(500e6), peak);
}

TEST(PackageDesign, RejectsPeakBelowDc)
{
    EXPECT_EXIT(PackageModel::design(50e6, 0.1e-3, 0.5e-3),
                ::testing::ExitedWithCode(1), "exceed");
}

TEST(PackageDesign, QualityFactorGrowsWithPeak)
{
    const auto cheap = PackageModel::design(50e6, 4e-3);
    const auto good = PackageModel::design(50e6, 1e-3);
    EXPECT_GT(cheap.qualityFactor(), good.qualityFactor());
}

TEST(PackageDesign, PaperReferenceScales)
{
    const auto base = PackageModel::paperReference(1e-3, 1.0);
    const auto x2 = PackageModel::paperReference(1e-3, 2.0);
    EXPECT_NEAR(x2.peakImpedance(), 2.0 * base.peakImpedance(),
                0.01 * base.peakImpedance());
}

TEST(PackageModel, StateSpaceDcConsistency)
{
    const auto m = reference();
    // At DC with I = 10 A: v_die = Vdd - R_s * I.
    auto sim = PdnSim(m);
    sim.trimToCurrent(0.0);
    double v = 0.0;
    for (int i = 0; i < 200000; ++i)
        v = sim.step(10.0);
    EXPECT_NEAR(v, 1.0 - 0.5e-3 * 10.0, 1e-9);
}

TEST(PdnSim, TrimSetsOperatingPoint)
{
    PdnSim sim(reference());
    sim.trimToCurrent(8.0);
    // Holding the trim current, the voltage must stay at nominal.
    for (int i = 0; i < 1000; ++i)
        EXPECT_NEAR(sim.step(8.0), 1.0, 1e-9);
    EXPECT_NEAR(sim.vddSetPoint(), 1.0 + 0.5e-3 * 8.0, 1e-12);
}

TEST(PdnSim, StepUpDipsVoltage)
{
    PdnSim sim(reference());
    sim.trimToCurrent(5.0);
    double vmin = 1.0;
    // Long enough for the bulk-capacitor pole to develop the full DC
    // drop (the resonance rings early around the shallower package-
    // loop level, so the approach to DC is from above).
    for (int i = 0; i < 5000; ++i)
        vmin = std::min(vmin, sim.step(50.0));
    EXPECT_LE(vmin, 1.0 - 0.5e-3 * 45.0 + 1e-4); // reaches the DC drop
    EXPECT_LT(vmin, 0.98);
}

TEST(PdnSim, StepDownRaisesVoltage)
{
    PdnSim sim(reference());
    sim.trimToCurrent(50.0);
    double vmax = 0.0;
    for (int i = 0; i < 500; ++i)
        vmax = std::max(vmax, sim.step(5.0));
    EXPECT_GT(vmax, 1.0); // voltage-high overshoot
}

TEST(PdnSim, ResetRestoresTrimState)
{
    PdnSim sim(reference());
    sim.trimToCurrent(5.0);
    for (int i = 0; i < 100; ++i)
        sim.step(40.0);
    sim.reset();
    EXPECT_NEAR(sim.step(5.0), 1.0, 1e-9);
}

TEST(PdnSim, RunMatchesStep)
{
    PdnSim a(reference()), b(reference());
    a.trimToCurrent(5.0);
    b.trimToCurrent(5.0);
    std::vector<double> trace{5, 30, 30, 5, 50, 5, 5, 20};
    const auto vs = a.run(trace);
    for (size_t i = 0; i < trace.size(); ++i)
        EXPECT_DOUBLE_EQ(vs[i], b.step(trace[i]));
}

TEST(PdnSim, StepManyMatchesStepBitExact)
{
    // stepMany is the batched back-end of trace replay: it must
    // reproduce per-cycle step() exactly (same discretised arithmetic
    // in the same order), for any chunking of the trace.
    PdnSim a(reference()), b(reference());
    a.trimToCurrent(5.0);
    b.trimToCurrent(5.0);

    vguard::Rng rng(77);
    std::vector<double> amps(1000);
    for (double &x : amps)
        x = 5.0 + 45.0 * rng.uniform();

    std::vector<double> va(amps.size()), vb(amps.size());
    for (size_t i = 0; i < amps.size(); ++i)
        va[i] = a.step(amps[i]);

    const size_t chunks[] = {1, 3, 64, 256};
    size_t ci = 0, off = 0;
    while (off < amps.size()) {
        const size_t n = std::min(chunks[ci++ % 4], amps.size() - off);
        b.stepMany(amps.data() + off, n, vb.data() + off);
        off += n;
    }
    for (size_t i = 0; i < amps.size(); ++i)
        EXPECT_EQ(va[i], vb[i]) << "cycle " << i;
}

TEST(PdnSim, StepPathsAllocationFreeAfterWarmup)
{
    PdnSim sim(reference());
    sim.trimToCurrent(5.0);
    std::vector<double> amps(512), volts(512);
    for (size_t i = 0; i < amps.size(); ++i)
        amps[i] = 5.0 + static_cast<double>(i % 50);
    // First call sizes the state-space scratch buffers.
    sim.stepMany(amps.data(), amps.size(), volts.data());

    const std::uint64_t before =
        gAllocCount.load(std::memory_order_relaxed);
    for (int r = 0; r < 16; ++r)
        sim.stepMany(amps.data(), amps.size(), volts.data());
    for (int i = 0; i < 1000; ++i)
        sim.step(20.0);
    const std::uint64_t delta =
        gAllocCount.load(std::memory_order_relaxed) - before;
    EXPECT_EQ(delta, 0u)
        << "stepMany/step must not allocate per call after warm-up";
}

TEST(Impulse, SumEqualsMinusDcResistance)
{
    const auto h = impulseResponse(reference());
    double sum = 0.0;
    for (double v : h)
        sum += v;
    EXPECT_NEAR(sum, -0.5e-3, 1e-8);
}

TEST(Impulse, FirstTapNegative)
{
    const auto h = impulseResponse(reference());
    ASSERT_FALSE(h.empty());
    EXPECT_LT(h[0], 0.0);
}

TEST(Impulse, DecaysToZero)
{
    const auto h = impulseResponse(reference());
    double tail = 0.0;
    for (size_t i = h.size() - 10; i < h.size(); ++i)
        tail = std::max(tail, std::fabs(h[i]));
    double peak = 0.0;
    for (double v : h)
        peak = std::max(peak, std::fabs(v));
    EXPECT_LT(tail, 1e-5 * peak);
}

TEST(Impulse, RingsAtResonantPeriod)
{
    // The kernel should change sign with a period near the package
    // resonant period (ringing).
    const auto m = reference();
    const auto h = impulseResponse(m);
    // Find the first two zero crossings after the initial dip.
    size_t first = 0, second = 0;
    for (size_t i = 1; i < h.size(); ++i) {
        if (h[i - 1] < 0 && h[i] >= 0 && first == 0) {
            first = i;
        } else if (first != 0 && h[i - 1] > 0 && h[i] <= 0) {
            second = i;
            break;
        }
    }
    ASSERT_GT(first, 0u);
    ASSERT_GT(second, first);
    const double halfPeriod = static_cast<double>(second - first);
    EXPECT_NEAR(halfPeriod, m.resonantPeriodCycles() / 2.0,
                m.resonantPeriodCycles() * 0.25);
}

TEST(Impulse, StepResponseIsKernelPrefixSum)
{
    const auto m = reference();
    const auto h = impulseResponse(m);
    const auto s = stepResponse(m, 200);
    double acc = 0.0;
    for (size_t i = 0; i < 200; ++i) {
        acc += h[i];
        EXPECT_NEAR(s[i], acc, 1e-12) << "i=" << i;
    }
}

TEST(Impulse, ConvolverMatchesStateSpace)
{
    // The paper's convolution methodology (Fig. 7) must agree with
    // direct state-space stepping.
    const auto m = reference();
    PdnSim sim(m);
    sim.trimToCurrent(5.0);
    Convolver conv(impulseResponse(m), sim.vddSetPoint(), 5.0);

    vguard::Rng rng(123);
    double maxErr = 0.0;
    for (int t = 0; t < 3000; ++t) {
        const double amps = 5.0 + 45.0 * rng.uniform();
        const double vs = sim.step(amps);
        const double vc = conv.step(amps);
        maxErr = std::max(maxErr, std::fabs(vs - vc));
    }
    EXPECT_LT(maxErr, 1e-6);
}

TEST(Impulse, ConvolverResetRestoresBias)
{
    const auto m = reference();
    Convolver conv(impulseResponse(m), 1.0, 10.0);
    for (int i = 0; i < 50; ++i)
        conv.step(60.0);
    conv.reset();
    // At the bias current the deviation is the DC drop of the bias.
    const double v = conv.step(10.0);
    EXPECT_NEAR(v, 1.0 - 0.5e-3 * 10.0, 1e-7);
}

// ---------------------------------------------- partitioned convolver

/** Max |naive - partitioned| over @p cycles of a pseudo-random trace. */
double
maxPartitionedDeviation(const std::vector<double> &h, double iBias,
                        size_t blockSize, size_t cycles,
                        uint64_t seed = 2026)
{
    Convolver naive(h, 1.0, iBias);
    PartitionedConvolver part(h, 1.0, iBias, blockSize);
    vguard::Rng rng(seed);
    double maxDev = 0.0;
    for (size_t t = 0; t < cycles; ++t) {
        const double amps = 5.0 + 50.0 * rng.uniform();
        maxDev = std::max(maxDev,
                          std::fabs(naive.step(amps) - part.step(amps)));
    }
    return maxDev;
}

TEST(Partitioned, MatchesNaiveOnReferenceKernel)
{
    const auto h = impulseResponse(reference());
    EXPECT_LT(maxPartitionedDeviation(h, 10.0, 128, 3000), 1e-12);
}

TEST(Partitioned, MatchesNaiveAcrossKernelLengths)
{
    // Edge geometries: kernel shorter than a block, exactly one block,
    // one block plus a fragment, odd lengths, multi-partition.
    const auto full = impulseResponse(reference());
    for (size_t taps : {size_t{1}, size_t{7}, size_t{64}, size_t{128},
                        size_t{129}, size_t{257}, size_t{1000},
                        size_t{4096}}) {
        auto h = full;
        h.resize(taps, 0.0);
        const size_t cycles = std::max<size_t>(4 * taps, 600);
        EXPECT_LT(maxPartitionedDeviation(h, 8.0, 128, cycles), 1e-12)
            << "taps=" << taps;
    }
}

TEST(Partitioned, MatchesNaiveAcrossBlockSizes)
{
    auto h = impulseResponse(reference());
    h.resize(1500, 0.0);
    for (size_t block : {size_t{16}, size_t{64}, size_t{128},
                         size_t{256}}) {
        EXPECT_LT(maxPartitionedDeviation(h, 12.0, block, 4000), 1e-12)
            << "block=" << block;
    }
}

TEST(Partitioned, MatchesStateSpace)
{
    // Same property as Impulse.ConvolverMatchesStateSpace, but for the
    // fast back-end: the partitioned convolver must track direct
    // state-space stepping, not merely the naive convolver.
    const auto m = reference();
    PdnSim sim(m);
    sim.trimToCurrent(5.0);
    PartitionedConvolver conv(impulseResponse(m), sim.vddSetPoint(),
                              5.0);
    vguard::Rng rng(123);
    double maxErr = 0.0;
    for (int t = 0; t < 3000; ++t) {
        const double amps = 5.0 + 45.0 * rng.uniform();
        maxErr = std::max(maxErr,
                          std::fabs(sim.step(amps) - conv.step(amps)));
    }
    EXPECT_LT(maxErr, 1e-6);
}

TEST(Partitioned, ResetRestoresBias)
{
    const auto m = reference();
    PartitionedConvolver conv(impulseResponse(m), 1.0, 10.0);
    for (int i = 0; i < 500; ++i)
        conv.step(60.0);
    conv.reset();
    const double v = conv.step(10.0);
    EXPECT_NEAR(v, 1.0 - 0.5e-3 * 10.0, 1e-7);
}

TEST(Partitioned, ResetReplaysIdentically)
{
    const auto h = impulseResponse(reference());
    PartitionedConvolver conv(h, 1.0, 10.0);
    auto replay = [&conv] {
        std::vector<double> out;
        vguard::Rng rng(55);
        for (int t = 0; t < 700; ++t)
            out.push_back(conv.step(10.0 + 30.0 * rng.uniform()));
        return out;
    };
    const auto first = replay();
    conv.reset();
    const auto second = replay();
    for (size_t i = 0; i < first.size(); ++i)
        EXPECT_DOUBLE_EQ(first[i], second[i]) << i;
}

TEST(Partitioned, SegmentedReuseMatchesNaiveAndReset)
{
    // VoltageSim reuses one convolver across back-to-back run() calls,
    // so the overlap-save state must carry across arbitrary segment
    // boundaries (including mid-frame ones) exactly like the naive
    // convolver's ring buffer, and reset() must return both to the
    // same primed-bias state.
    const auto h = impulseResponse(reference());
    Convolver naive(h, 1.0, 10.0);
    PartitionedConvolver part(h, 1.0, 10.0);

    vguard::Rng rng(99);
    auto drive = [&](size_t cycles) {
        double maxDev = 0.0;
        for (size_t t = 0; t < cycles; ++t) {
            const double amps = 5.0 + 50.0 * rng.uniform();
            maxDev = std::max(
                maxDev, std::fabs(naive.step(amps) - part.step(amps)));
        }
        return maxDev;
    };

    for (size_t seg : {size_t{7}, size_t{100}, size_t{128}, size_t{129},
                       size_t{500}, size_t{1000}})
        EXPECT_LT(drive(seg), 1e-12) << "segment " << seg;

    naive.reset();
    part.reset();
    for (size_t seg : {size_t{3}, size_t{250}, size_t{640}})
        EXPECT_LT(drive(seg), 1e-12) << "post-reset segment " << seg;
}

TEST(Partitioned, StepAllocationFreeAfterWarmup)
{
    const auto h = impulseResponse(reference());
    PartitionedConvolver conv(h, 1.0, 10.0);
    // Warm past several frame boundaries (FFT pushes, tail MACs).
    for (int i = 0; i < 600; ++i)
        conv.step(12.0);

    const std::uint64_t before =
        gAllocCount.load(std::memory_order_relaxed);
    double sink = 0.0;
    for (int i = 0; i < 2000; ++i)
        sink += conv.step(12.0 + static_cast<double>(i & 7));
    const std::uint64_t delta =
        gAllocCount.load(std::memory_order_relaxed) - before;
    EXPECT_EQ(delta, 0u)
        << "partitioned convolver step must be allocation-free";
    EXPECT_TRUE(std::isfinite(sink));
}

TEST(Partitioned, RejectsBadArguments)
{
    EXPECT_EXIT(PartitionedConvolver(std::vector<double>{}, 1.0),
                ::testing::ExitedWithCode(1), "empty");
    EXPECT_EXIT(PartitionedConvolver(std::vector<double>{1.0}, 1.0,
                                     0.0, 96),
                ::testing::ExitedWithCode(1), "power of two");
}

TEST(Impulse, EnergyTruncationShortensKernel)
{
    const auto m = reference();
    const auto tight = impulseResponse(m, 1e-9, 1 << 15, 0.0);
    const auto loose = impulseResponse(m, 1e-9, 1 << 15, 1e-6);
    EXPECT_LT(loose.size(), tight.size());
    // The discarded tail carries roughly sqrt(tol * E * N) of l1 mass
    // (~7e-6 here); the DC-resistance sum property survives to that
    // order.
    double sum = 0.0;
    for (double v : loose)
        sum += v;
    EXPECT_NEAR(sum, -0.5e-3, 2e-5);
}

TEST(Impulse, DefaultEnergyTruncationIsLossless)
{
    // The default 1e-18 tolerance only sheds numerically-dead taps:
    // convolving with the truncated kernel must agree with the
    // untruncated one to well under a nanovolt.
    const auto m = reference();
    const auto def = impulseResponse(m);
    const auto full = impulseResponse(m, 1e-9, 1 << 15, 0.0);
    ASSERT_LE(def.size(), full.size());
    Convolver a(def, 1.0, 10.0), b(full, 1.0, 10.0);
    vguard::Rng rng(31);
    double maxDev = 0.0;
    for (int t = 0; t < 2000; ++t) {
        const double amps = 5.0 + 50.0 * rng.uniform();
        maxDev = std::max(maxDev, std::fabs(a.step(amps) - b.step(amps)));
    }
    EXPECT_LT(maxDev, 1e-9);
}

TEST(TargetImpedance, CalibrationMeetsBandExactly)
{
    TargetImpedanceSpec spec;
    spec.iMin = 8.0;
    spec.iMax = 55.0;
    const auto res = calibrateTargetImpedance(spec);
    EXPECT_GT(res.zTargetOhms, spec.rDc);
    // Worst-case extremes must be inside (but near) the band.
    EXPECT_GE(res.worstDipV, 0.95 - 1e-4);
    EXPECT_LE(res.worstPeakV, 1.05 + 1e-4);
    const double slack = std::min(res.worstDipV - 0.95,
                                  1.05 - res.worstPeakV);
    EXPECT_LT(slack, 5e-3); // the binding side is within 5 mV of edge
}

TEST(TargetImpedance, DoubleImpedanceViolatesBand)
{
    TargetImpedanceSpec spec;
    spec.iMin = 8.0;
    spec.iMax = 55.0;
    const auto res = calibrateTargetImpedance(spec);
    const auto m2 = PackageModel::design(spec.f0Hz, 2.0 * res.zTargetOhms,
                                         spec.rDc, spec.rDamp,
                                         spec.clockHz, spec.vNominal);
    double vMin, vMax;
    worstCaseExtremes(m2, spec.iMin, spec.iMax, vMin, vMax);
    EXPECT_TRUE(vMin < 0.95 || vMax > 1.05);
}

TEST(TargetImpedance, WorstCaseBeatsResonantSquareWave)
{
    // The bang-bang bound must dominate (be at least as bad as) the
    // resonant square wave the paper uses.
    const auto m = reference();
    double vMin, vMax;
    worstCaseExtremes(m, 8.0, 55.0, vMin, vMax);

    PdnSim sim(m);
    sim.trimToCurrent(8.0);
    const auto wave = vguard::linsys::resonantSquareWave(
        20 * m.resonantPeriodCycles(), m.resonantPeriodCycles() / 2, 8.0,
        55.0);
    double swMin = 2.0, swMax = 0.0;
    for (double i : wave) {
        const double v = sim.step(i);
        swMin = std::min(swMin, v);
        swMax = std::max(swMax, v);
    }
    EXPECT_LE(vMin, swMin + 1e-9);
    EXPECT_GE(vMax, swMax - 1e-9);
    // ... and the square wave should come close (within 25 %) of it.
    EXPECT_LT((swMin - vMin) / (1.0 - vMin), 0.25);
}

TEST(TargetImpedance, RejectsBadCurrentRange)
{
    TargetImpedanceSpec spec;
    spec.iMin = 10.0;
    spec.iMax = 10.0;
    EXPECT_EXIT(calibrateTargetImpedance(spec),
                ::testing::ExitedWithCode(1), "iMax");
}

TEST(Itrs, TrendsDownward)
{
    for (const auto &map :
         {ItrsRoadmap::highPerformance(), ItrsRoadmap::costPerformance()}) {
        const auto &e = map.entries();
        ASSERT_GE(e.size(), 5u);
        for (size_t i = 1; i < e.size(); ++i)
            EXPECT_LT(e[i].zTargetOhms, e[i - 1].zTargetOhms)
                << "year " << e[i].year;
    }
}

TEST(Itrs, HalvingPeriodInPaperRange)
{
    // "target impedance must drop rapidly, at roughly 2x every 3-5
    // years"
    EXPECT_GE(ItrsRoadmap::highPerformance().halvingPeriodYears(), 3.0);
    EXPECT_LE(ItrsRoadmap::highPerformance().halvingPeriodYears(), 5.0);
}

TEST(Itrs, CostPerfGapShrinks)
{
    const auto hp = ItrsRoadmap::highPerformance().entries();
    const auto cp = ItrsRoadmap::costPerformance().entries();
    ASSERT_EQ(hp.size(), cp.size());
    const double firstRatio = cp.front().zTargetOhms / hp.front().zTargetOhms;
    const double lastRatio = cp.back().zTargetOhms / hp.back().zTargetOhms;
    EXPECT_GT(firstRatio, 1.0);
    EXPECT_GT(lastRatio, 1.0);
    EXPECT_LT(lastRatio, firstRatio); // shrinking gap
}

TEST(Itrs, NormalisedToHighPerf2001)
{
    const auto hp = ItrsRoadmap::highPerformance().entries();
    EXPECT_DOUBLE_EQ(hp.front().zRelative, 1.0);
}

// Property sweep: packages across the paper's impedance multiples stay
// physically sane — stable, passive (DC resistance unchanged) and with
// monotonically increasing worst-case swing.
class ImpedanceSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(ImpedanceSweep, StableAndConsistent)
{
    const double scale = GetParam();
    const auto m = PackageModel::paperReference(1e-3, scale);
    EXPECT_LT(m.discrete().spectralRadiusEstimate(), 1.0);
    EXPECT_NEAR(m.impedanceMag(0.0), 0.5e-3, 1e-9);
    EXPECT_NEAR(m.peakImpedance(), scale * 1e-3, scale * 1e-3 * 1e-3);

    const auto h = impulseResponse(m);
    const auto wc = vguard::linsys::bangBangWorstCase(h, 8.0, 55.0);
    EXPECT_LT(wc.minOutput, 0.0);
    EXPECT_GT(wc.maxOutput, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Scales, ImpedanceSweep,
                         ::testing::Values(1.0, 2.0, 3.0, 4.0, 6.0));

} // namespace
