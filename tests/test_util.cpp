/**
 * @file
 * Unit tests for src/util: RNG, running statistics, histogram, tables.
 */

#include <cmath>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using vguard::Histogram;
using vguard::Rng;
using vguard::RunningStat;
using vguard::Table;

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntervalRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng r(11);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, BelowInRange)
{
    Rng r(3);
    std::set<uint64_t> seen;
    for (int i = 0; i < 5000; ++i) {
        const uint64_t v = r.below(17);
        EXPECT_LT(v, 17u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 17u); // all residues hit
}

TEST(Rng, ChanceExtremes)
{
    Rng r(5);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, GaussianMoments)
{
    Rng r(13);
    RunningStat s;
    for (int i = 0; i < 200000; ++i)
        s.add(r.gaussian());
    EXPECT_NEAR(s.mean(), 0.0, 0.01);
    EXPECT_NEAR(s.stddev(), 1.0, 0.01);
}

TEST(Rng, GaussianScaled)
{
    Rng r(17);
    RunningStat s;
    for (int i = 0; i < 100000; ++i)
        s.add(r.gaussian(5.0, 2.0));
    EXPECT_NEAR(s.mean(), 5.0, 0.05);
    EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng r(99);
    const uint64_t first = r.next();
    r.next();
    r.reseed(99);
    EXPECT_EQ(r.next(), first);
}

TEST(RunningStat, Empty)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStat, SingleSample)
{
    RunningStat s;
    s.add(3.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownMoments)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0); // population variance
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesCombined)
{
    RunningStat a, b, whole;
    vguard::Rng r(21);
    for (int i = 0; i < 1000; ++i) {
        const double x = r.uniform(-10, 10);
        whole.add(x);
        (i < 400 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-10);
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, b;
    a.add(1.0);
    a.add(2.0);
    const double mean = a.mean();
    a.merge(b); // no-op
    EXPECT_DOUBLE_EQ(a.mean(), mean);
    b.merge(a); // copy
    EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(RunningStat, Reset)
{
    RunningStat s;
    s.add(1.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Histogram, BinAssignment)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.0);   // bin 0
    h.add(0.999); // bin 0
    h.add(1.0);   // bin 1
    h.add(9.999); // bin 9
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(9), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OutOfRange)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-0.1);
    h.add(1.0); // hi edge is exclusive
    h.add(5.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinCenters)
{
    Histogram h(0.0, 1.0, 4);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.125);
    EXPECT_DOUBLE_EQ(h.binCenter(3), 0.875);
}

TEST(Histogram, Fractions)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.25);
    h.add(0.25);
    h.add(0.75);
    h.add(0.75);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.5);
}

TEST(Histogram, FractionBelow)
{
    Histogram h(0.0, 1.0, 10);
    for (int i = 0; i < 10; ++i)
        h.add(0.05 + 0.1 * i); // one sample per bin
    EXPECT_DOUBLE_EQ(h.fractionBelow(0.5), 0.5);
    EXPECT_DOUBLE_EQ(h.fractionBelow(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.fractionBelow(1.0), 1.0);
}

TEST(Histogram, FractionBelowAgreesWithAddAtBinBoundaries)
{
    // Regression: the old implementation located x by accumulating bin
    // upper edges (lo + (i+1)*w and comparing with <=), which drifts
    // from add()'s (x - lo) / w division by an ulp on boundaries the
    // width does not represent exactly. With [0, 1.1) split 13 ways,
    // x = lo + 3w rounds *below* the accumulated third edge, so the old
    // code counted the sample's own bin as "below" it.
    Histogram h(0.0, 1.1, 13);
    const double w = 1.1 / 13.0;
    const double x = 0.0 + 3 * w;
    h.add(x);
    ASSERT_EQ(h.count(2), 1u); // add() places lo + 3w in bin 2 (fp)
    EXPECT_DOUBLE_EQ(h.fractionBelow(x), 0.0); // own bin is not below

    // Sweep every representable boundary of several geometries: a
    // sample added at a boundary must never count below itself.
    for (size_t bins : {size_t{13}, size_t{80}, size_t{7}}) {
        Histogram g(0.0, 1.1, bins);
        const double bw = 1.1 / static_cast<double>(bins);
        for (size_t k = 1; k < bins; ++k) {
            const double b = static_cast<double>(k) * bw;
            g.reset();
            g.add(b);
            EXPECT_DOUBLE_EQ(g.fractionBelow(b), 0.0)
                << "bins=" << bins << " k=" << k;
        }
    }
}

TEST(Histogram, FractionBelowCountsUnderflowAndExcludesOverflow)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-1.0); // underflow
    h.add(0.1);  // bin 0
    h.add(0.6);  // bin 2
    h.add(2.0);  // overflow
    EXPECT_DOUBLE_EQ(h.fractionBelow(-0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.fractionBelow(0.05), 0.25); // underflow only
    EXPECT_DOUBLE_EQ(h.fractionBelow(0.5), 0.5);   // + bin 0
    EXPECT_DOUBLE_EQ(h.fractionBelow(1.0), 0.75);  // all bins, no ovf
    EXPECT_DOUBLE_EQ(h.fractionBelow(9.0), 0.75);
}

TEST(Histogram, Reset)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.5);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.count(1), 0u);
}

TEST(Histogram, AsciiContainsBars)
{
    Histogram h(0.0, 1.0, 3);
    for (int i = 0; i < 10; ++i)
        h.add(0.5);
    const std::string art = h.ascii(20);
    EXPECT_NE(art.find('#'), std::string::npos);
    EXPECT_NE(art.find('%'), std::string::npos);
}

TEST(Table, AsciiHasHeadersAndRows)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "2"});
    const std::string a = t.ascii();
    EXPECT_NE(a.find("name"), std::string::npos);
    EXPECT_NE(a.find("alpha"), std::string::npos);
    EXPECT_NE(a.find("beta"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.cols(), 2u);
}

TEST(Table, ShortRowsPadded)
{
    Table t({"a", "b", "c"});
    t.addRow({"only"});
    EXPECT_NE(t.ascii().find("only"), std::string::npos);
    EXPECT_NE(t.csv().find("only,,"), std::string::npos);
}

TEST(Table, CsvQuoting)
{
    Table t({"x"});
    t.addRow({"has,comma"});
    t.addRow({"has\"quote"});
    const std::string csv = t.csv();
    EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, FmtPrecision)
{
    EXPECT_EQ(Table::fmt(1.5), "1.5");
    EXPECT_EQ(Table::fmt(0.123456789, 3), "0.123");
}

} // namespace
