/**
 * @file
 * Unit tests for src/util: RNG, running statistics, histogram, tables.
 */

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include "util/json_parse.hpp"
#include "util/jsonl.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using vguard::Histogram;
using vguard::Rng;
using vguard::RunningStat;
using vguard::Table;

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntervalRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng r(11);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, BelowInRange)
{
    Rng r(3);
    std::set<uint64_t> seen;
    for (int i = 0; i < 5000; ++i) {
        const uint64_t v = r.below(17);
        EXPECT_LT(v, 17u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 17u); // all residues hit
}

TEST(Rng, ChanceExtremes)
{
    Rng r(5);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, GaussianMoments)
{
    Rng r(13);
    RunningStat s;
    for (int i = 0; i < 200000; ++i)
        s.add(r.gaussian());
    EXPECT_NEAR(s.mean(), 0.0, 0.01);
    EXPECT_NEAR(s.stddev(), 1.0, 0.01);
}

TEST(Rng, GaussianScaled)
{
    Rng r(17);
    RunningStat s;
    for (int i = 0; i < 100000; ++i)
        s.add(r.gaussian(5.0, 2.0));
    EXPECT_NEAR(s.mean(), 5.0, 0.05);
    EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng r(99);
    const uint64_t first = r.next();
    r.next();
    r.reseed(99);
    EXPECT_EQ(r.next(), first);
}

TEST(RunningStat, Empty)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStat, SingleSample)
{
    RunningStat s;
    s.add(3.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownMoments)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0); // population variance
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesCombined)
{
    RunningStat a, b, whole;
    vguard::Rng r(21);
    for (int i = 0; i < 1000; ++i) {
        const double x = r.uniform(-10, 10);
        whole.add(x);
        (i < 400 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-10);
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, b;
    a.add(1.0);
    a.add(2.0);
    const double mean = a.mean();
    a.merge(b); // no-op
    EXPECT_DOUBLE_EQ(a.mean(), mean);
    b.merge(a); // copy
    EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(RunningStat, Reset)
{
    RunningStat s;
    s.add(1.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Histogram, BinAssignment)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.0);   // bin 0
    h.add(0.999); // bin 0
    h.add(1.0);   // bin 1
    h.add(9.999); // bin 9
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(9), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OutOfRange)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-0.1);
    h.add(1.0); // hi edge is exclusive
    h.add(5.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinCenters)
{
    Histogram h(0.0, 1.0, 4);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 0.125);
    EXPECT_DOUBLE_EQ(h.binCenter(3), 0.875);
}

TEST(Histogram, Fractions)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.25);
    h.add(0.25);
    h.add(0.75);
    h.add(0.75);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.5);
}

TEST(Histogram, FractionBelow)
{
    Histogram h(0.0, 1.0, 10);
    for (int i = 0; i < 10; ++i)
        h.add(0.05 + 0.1 * i); // one sample per bin
    EXPECT_DOUBLE_EQ(h.fractionBelow(0.5), 0.5);
    EXPECT_DOUBLE_EQ(h.fractionBelow(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.fractionBelow(1.0), 1.0);
}

TEST(Histogram, FractionBelowAgreesWithAddAtBinBoundaries)
{
    // Regression: the old implementation located x by accumulating bin
    // upper edges (lo + (i+1)*w and comparing with <=), which drifts
    // from add()'s (x - lo) / w division by an ulp on boundaries the
    // width does not represent exactly. With [0, 1.1) split 13 ways,
    // x = lo + 3w rounds *below* the accumulated third edge, so the old
    // code counted the sample's own bin as "below" it.
    Histogram h(0.0, 1.1, 13);
    const double w = 1.1 / 13.0;
    const double x = 0.0 + 3 * w;
    h.add(x);
    ASSERT_EQ(h.count(2), 1u); // add() places lo + 3w in bin 2 (fp)
    EXPECT_DOUBLE_EQ(h.fractionBelow(x), 0.0); // own bin is not below

    // Sweep every representable boundary of several geometries: a
    // sample added at a boundary must never count below itself.
    for (size_t bins : {size_t{13}, size_t{80}, size_t{7}}) {
        Histogram g(0.0, 1.1, bins);
        const double bw = 1.1 / static_cast<double>(bins);
        for (size_t k = 1; k < bins; ++k) {
            const double b = static_cast<double>(k) * bw;
            g.reset();
            g.add(b);
            EXPECT_DOUBLE_EQ(g.fractionBelow(b), 0.0)
                << "bins=" << bins << " k=" << k;
        }
    }
}

TEST(Histogram, FractionBelowCountsUnderflowAndExcludesOverflow)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-1.0); // underflow
    h.add(0.1);  // bin 0
    h.add(0.6);  // bin 2
    h.add(2.0);  // overflow
    EXPECT_DOUBLE_EQ(h.fractionBelow(-0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.fractionBelow(0.05), 0.25); // underflow only
    EXPECT_DOUBLE_EQ(h.fractionBelow(0.5), 0.5);   // + bin 0
    EXPECT_DOUBLE_EQ(h.fractionBelow(1.0), 0.75);  // all bins, no ovf
    EXPECT_DOUBLE_EQ(h.fractionBelow(9.0), 0.75);
}

TEST(Histogram, Reset)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.5);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.count(1), 0u);
}

TEST(Histogram, AsciiContainsBars)
{
    Histogram h(0.0, 1.0, 3);
    for (int i = 0; i < 10; ++i)
        h.add(0.5);
    const std::string art = h.ascii(20);
    EXPECT_NE(art.find('#'), std::string::npos);
    EXPECT_NE(art.find('%'), std::string::npos);
}

TEST(Table, AsciiHasHeadersAndRows)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "2"});
    const std::string a = t.ascii();
    EXPECT_NE(a.find("name"), std::string::npos);
    EXPECT_NE(a.find("alpha"), std::string::npos);
    EXPECT_NE(a.find("beta"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.cols(), 2u);
}

TEST(Table, ShortRowsPadded)
{
    Table t({"a", "b", "c"});
    t.addRow({"only"});
    EXPECT_NE(t.ascii().find("only"), std::string::npos);
    EXPECT_NE(t.csv().find("only,,"), std::string::npos);
}

TEST(Table, CsvQuoting)
{
    Table t({"x"});
    t.addRow({"has,comma"});
    t.addRow({"has\"quote"});
    const std::string csv = t.csv();
    EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, FmtPrecision)
{
    EXPECT_EQ(Table::fmt(1.5), "1.5");
    EXPECT_EQ(Table::fmt(0.123456789, 3), "0.123");
}

TEST(NumbersEquivalent, FormattingVariantsCompareEqual)
{
    // A baseline regenerated with different float formatting must
    // still match: 0.5 and 5e-1 are the same number. The old raw-byte
    // comparison in vguard-report's equals_baseline failed this.
    auto num = [](const char *text) {
        return vguard::parseJsonOrDie(text, "test");
    };
    EXPECT_TRUE(vguard::numbersEquivalent(num("0.5"), num("5e-1")));
    EXPECT_TRUE(vguard::numbersEquivalent(num("8"), num("8.0")));
    EXPECT_TRUE(vguard::numbersEquivalent(num("1000"), num("1e3")));
    EXPECT_TRUE(vguard::numbersEquivalent(num("-0.25"), num("-2.5e-1")));
    EXPECT_FALSE(vguard::numbersEquivalent(num("0.5"), num("0.5000001")));
}

TEST(NumbersEquivalent, IntegerSpellingsStayExactPastDoubleRange)
{
    // 2^53 and 2^53 + 1 collapse onto the same double; the integer
    // fast path must still tell them apart.
    auto num = [](const char *text) {
        return vguard::parseJsonOrDie(text, "test");
    };
    EXPECT_FALSE(vguard::numbersEquivalent(num("9007199254740993"),
                                           num("9007199254740992")));
    EXPECT_TRUE(vguard::numbersEquivalent(num("9007199254740993"),
                                          num("9007199254740993")));
}

TEST(NumbersEquivalent, NonNumbersNeverEqual)
{
    auto val = [](const char *text) {
        return vguard::parseJsonOrDie(text, "test");
    };
    EXPECT_FALSE(vguard::numbersEquivalent(val("\"5\""), val("5")));
    EXPECT_FALSE(vguard::numbersEquivalent(val("true"), val("1")));
    EXPECT_FALSE(vguard::numbersEquivalent(val("null"), val("null")));
}

TEST(JsonWriter, NonFiniteDoublesEmitStringSentinels)
{
    using vguard::JsonWriter;
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(JsonWriter::number(nan), "\"nan\"");
    EXPECT_EQ(JsonWriter::number(inf), "\"inf\"");
    EXPECT_EQ(JsonWriter::number(-inf), "\"-inf\"");

    JsonWriter w;
    w.beginObject();
    w.field("a", nan);
    w.field("b", inf);
    w.field("c", -inf);
    w.field("d", 1.5);
    w.endObject();
    // The document must stay valid JSON: no bare nan/inf tokens.
    EXPECT_EQ(w.take(),
              "{\"a\":\"nan\",\"b\":\"inf\",\"c\":\"-inf\",\"d\":1.5}");
}

TEST(JsonWriter, NonFiniteSentinelsRoundTrip)
{
    using vguard::JsonWriter;
    // The sentinel's unquoted text must parse back (strtod accepts
    // "nan"/"inf"/"-inf") to a value of the same class and sign, so a
    // reader that unwraps the string recovers the original.
    const double cases[] = {std::numeric_limits<double>::quiet_NaN(),
                            std::numeric_limits<double>::infinity(),
                            -std::numeric_limits<double>::infinity()};
    for (double v : cases) {
        std::string s = JsonWriter::number(v);
        ASSERT_GE(s.size(), 2u);
        ASSERT_EQ(s.front(), '"');
        ASSERT_EQ(s.back(), '"');
        const std::string inner = s.substr(1, s.size() - 2);
        const double back = std::strtod(inner.c_str(), nullptr);
        EXPECT_EQ(std::isnan(back), std::isnan(v));
        EXPECT_EQ(std::isinf(back), std::isinf(v));
        if (!std::isnan(v)) {
            EXPECT_EQ(std::signbit(back), std::signbit(v));
        }
    }
    // Finite values keep round-tripping exactly (shortest form).
    for (double v : {0.0, -0.25, 1e-300, 3.141592653589793}) {
        const std::string s = JsonWriter::number(v);
        EXPECT_EQ(std::strtod(s.c_str(), nullptr), v);
    }
}

// --------------------------------------------------------------- logging

/** RAII redirect of a FILE* fd into a temp file. */
class CaptureFd
{
  public:
    explicit CaptureFd(FILE *stream) : stream_(stream)
    {
        std::fflush(stream_);
        fd_ = fileno(stream_);
        saved_ = dup(fd_);
        std::snprintf(path_, sizeof(path_),
                      "/tmp/vguard_capture_XXXXXX");
        const int tmp = mkstemp(path_);
        EXPECT_GE(tmp, 0);
        dup2(tmp, fd_);
        close(tmp);
    }

    /** Restore the stream and return everything captured. */
    std::string finish()
    {
        std::fflush(stream_);
        dup2(saved_, fd_);
        close(saved_);
        std::string text;
        if (FILE *f = std::fopen(path_, "rb")) {
            char buf[4096];
            size_t n;
            while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
                text.append(buf, n);
            std::fclose(f);
        }
        std::remove(path_);
        return text;
    }

  private:
    FILE *stream_;
    int fd_ = -1;
    int saved_ = -1;
    char path_[64];
};

TEST(Logging, ConcurrentWarnsDoNotTearLines)
{
    // Regression test for the multi-fputs vprint: N threads hammer
    // warn() while another flips the verbosity; every captured line
    // must be exactly one complete "warn: t<i> m<j> end" record.
    // Run under TSan (-DVGUARD_SANITIZE=thread) this also proves the
    // verbosity global is race-free.
    constexpr int kThreads = 8;
    constexpr int kMessages = 200;

    CaptureFd capture(stderr);
    std::atomic<bool> go{false};
    std::vector<std::thread> workers;
    workers.reserve(kThreads + 1);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([t, &go] {
            while (!go.load(std::memory_order_acquire)) {
            }
            for (int j = 0; j < kMessages; ++j)
                vguard::warn("t%d m%d end", t, j);
        });
    }
    workers.emplace_back([&go] {
        while (!go.load(std::memory_order_acquire)) {
        }
        using vguard::Verbosity;
        for (int i = 0; i < 400; ++i) {
            vguard::setVerbosity(i % 2 ? Verbosity::Debug
                                       : Verbosity::Normal);
            (void)vguard::verbosity();
        }
    });
    go.store(true, std::memory_order_release);
    for (auto &w : workers)
        w.join();
    vguard::setVerbosity(vguard::Verbosity::Normal);

    const std::string text = capture.finish();
    std::istringstream lines(text);
    std::string line;
    size_t count = 0;
    std::set<std::string> seen;
    while (std::getline(lines, line)) {
        ++count;
        // Every line is whole: correct prefix, correct suffix, and a
        // unique (thread, message) tag — interleaving would corrupt
        // at least one of these.
        EXPECT_EQ(line.rfind("warn: t", 0), 0u) << line;
        ASSERT_GE(line.size(), 4u);
        EXPECT_EQ(line.substr(line.size() - 4), " end") << line;
        EXPECT_TRUE(seen.insert(line).second) << "duplicate: " << line;
    }
    EXPECT_EQ(count, size_t(kThreads) * kMessages);
}

TEST(Logging, QuietSuppressesInformButNotWarn)
{
    CaptureFd err(stderr);
    vguard::setVerbosity(vguard::Verbosity::Quiet);
    vguard::warn("still visible");
    vguard::setVerbosity(vguard::Verbosity::Normal);
    const std::string text = err.finish();
    EXPECT_NE(text.find("warn: still visible"), std::string::npos);
}

TEST(Logging, OversizedMessageSurvivesHeapFallback)
{
    // Messages longer than vprint's stack buffer must still come out
    // complete and untruncated.
    const std::string big(2000, 'x');
    CaptureFd err(stderr);
    vguard::warn("pre %s post", big.c_str());
    const std::string text = err.finish();
    EXPECT_NE(text.find("warn: pre " + big + " post\n"),
              std::string::npos);
}

} // namespace
