/**
 * @file
 * vlint cross-TU pass tests: fact extraction, call-graph linking, and
 * the four graph rules (det-reach, alloc-hot, lock-order, layer-dag)
 * over synthetic multi-file fixtures. The single-file rules and the
 * real-tree gate live in test_vlint.cpp.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "facts.hpp"
#include "graph.hpp"
#include "lexer.hpp"

using vlint::CallGraph;
using vlint::FileFacts;
using vlint::Finding;

namespace {

/** A synthetic multi-file tree fed straight into the linker. */
struct Tree
{
    std::vector<FileFacts> files;
    std::set<std::string> paths;

    void add(const std::string &path, const std::string &src)
    {
        files.push_back(vlint::extractFacts(path, vlint::lex(src)));
        paths.insert(path);
    }

    CallGraph link() const { return vlint::linkFacts(files, paths); }
};

const CallGraph::Node *
node(const CallGraph &g, const std::string &qualName)
{
    const auto it = g.byName.find(qualName);
    return it == g.byName.end() ? nullptr : &g.nodes[it->second];
}

bool
callsTo(const CallGraph &g, const std::string &from,
        const std::string &to)
{
    const CallGraph::Node *f = node(g, from);
    if (!f)
        return false;
    for (size_t idx : f->callees)
        if (g.nodes[idx].qualName == to)
            return true;
    return false;
}

bool
hasRule(const std::vector<Finding> &v, const std::string &rule)
{
    return std::any_of(v.begin(), v.end(), [&](const Finding &f) {
        return f.rule == rule;
    });
}

const Finding *
firstOf(const std::vector<Finding> &v, const std::string &rule)
{
    for (const Finding &f : v)
        if (f.rule == rule)
            return &f;
    return nullptr;
}

} // namespace

// ------------------------------------------------------------ linking

TEST(VlintGraph, OutOfLineMethodsGetClassQualifiedNames)
{
    Tree t;
    t.add("src/core/widget.cpp",
          "namespace vguard::core {\n"
          "int helper(int v) { return v + 1; }\n"
          "int\n"
          "Widget::total(int v)\n"
          "{\n"
          "    return helper(v);\n"
          "}\n"
          "} // namespace vguard::core\n");
    const CallGraph g = t.link();
    ASSERT_NE(node(g, "vguard::core::Widget::total"), nullptr);
    ASSERT_NE(node(g, "vguard::core::helper"), nullptr);
    EXPECT_TRUE(callsTo(g, "vguard::core::Widget::total",
                        "vguard::core::helper"));
}

TEST(VlintGraph, OverloadsCollapseOntoOneNode)
{
    Tree t;
    t.add("src/core/over.cpp",
          "namespace app {\n"
          "void f(int x) { (void)x; }\n"
          "void f(double x) { (void)x; }\n"
          "void g() { f(1); }\n"
          "} // namespace app\n");
    const CallGraph g = t.link();
    EXPECT_EQ(g.byName.count("app::f"), 1u);
    EXPECT_EQ(g.nDefined, 2u);  // f (collapsed) and g
    EXPECT_TRUE(callsTo(g, "app::g", "app::f"));
}

TEST(VlintGraph, UnresolvedExternalIsRecordedNotGuessed)
{
    Tree t;
    t.add("src/core/ext.cpp", "void caller() { frobnicate(3); }\n");
    const CallGraph g = t.link();
    EXPECT_EQ(node(g, "frobnicate"), nullptr);  // not a defined node
    bool sawExternal = false;
    for (const CallGraph::Node &n : g.nodes)
        if (n.qualName == "frobnicate")
            sawExternal = n.external;
    EXPECT_TRUE(sawExternal);
    EXPECT_EQ(g.nExternal, 1u);
}

TEST(VlintGraph, MemberCallsDoNotBindToTheCallersOwnClass)
{
    // conv_->step() inside a VoltageSim method is the convolver's
    // step, not VoltageSim::step — member calls on foreign objects
    // must skip the caller's scope chain (this-> still binds home).
    Tree t;
    t.add("src/core/sim.cpp",
          "namespace app {\n"
          "void Sim::step() { this->tick(); }\n"
          "void Sim::tick() { }\n"
          "void Sim::run() { conv_->step(1.0); }\n"
          "} // namespace app\n");
    const CallGraph g = t.link();
    EXPECT_TRUE(callsTo(g, "app::Sim::step", "app::Sim::tick"));
    EXPECT_FALSE(callsTo(g, "app::Sim::run", "app::Sim::step"));
}

// ----------------------------------------------------------- det-reach

TEST(VlintGraph, DetReachReportsFullCallChainThroughCycles)
{
    Tree t;
    t.add("src/core/eng.cpp",
          "struct CampaignEngine {\n"
          "    void run()\n"
          "    {\n"
          "        helperA();\n"
          "    }\n"
          "};\n"
          "void helperA() { helperB(); }\n"
          "void helperB()\n"
          "{\n"
          "    helperA();\n"  // recursion cycle must not hang the BFS
          "    int r = rand();\n"
          "    (void)r;\n"
          "}\n");
    const CallGraph g = t.link();
    EXPECT_EQ(g.nRoots, 1u);
    const auto findings = vlint::runGraphRules(g, 3);
    const Finding *f = firstOf(findings, "det-reach");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->file, "src/core/eng.cpp");
    EXPECT_NE(f->message.find("CampaignEngine::run"),
              std::string::npos);
    EXPECT_NE(f->message.find("->"), std::string::npos);
    EXPECT_NE(f->message.find("helperB"), std::string::npos);
}

TEST(VlintGraph, HazardsWithoutARootPathStayQuiet)
{
    Tree t;
    t.add("src/core/quiet.cpp",
          "void standalone() { int r = rand(); (void)r; }\n");
    const CallGraph g = t.link();
    EXPECT_FALSE(hasRule(vlint::runGraphRules(g, 3), "det-reach"));
}

// ----------------------------------------------------------- alloc-hot

TEST(VlintGraph, AllocHotHonoursTheDepthBudget)
{
    Tree t;
    t.add("src/pdn/kern.cpp",
          "// vlint: hot\n"
          "void kern() { l1(); }\n"
          "void l1() { l2(); }\n"
          "void l2() { l3(); }\n"
          "void l3() { l4(); }\n"
          "void l4() { buf.push_back(1); }\n");
    const CallGraph g = t.link();
    EXPECT_EQ(g.nHot, 1u);
    const CallGraph::Node *k = node(g, "kern");
    ASSERT_NE(k, nullptr);
    EXPECT_TRUE(k->hot);
    // The alloc sits at depth 4; the default budget of 3 stops short.
    EXPECT_FALSE(hasRule(vlint::runGraphRules(g, 3), "alloc-hot"));
    EXPECT_TRUE(hasRule(vlint::runGraphRules(g, 4), "alloc-hot"));
}

TEST(VlintGraph, AllocInsideTheHotKernelItselfIsDepthZero)
{
    Tree t;
    t.add("src/pdn/kern.cpp",
          "// vlint: hot\n"
          "void kern() { scratch.resize(64); }\n");
    const CallGraph g = t.link();
    const auto findings = vlint::runGraphRules(g, 0);
    const Finding *f = firstOf(findings, "alloc-hot");
    ASSERT_NE(f, nullptr);
    EXPECT_NE(f->message.find("depth 0"), std::string::npos);
    EXPECT_NE(f->message.find("kern"), std::string::npos);
}

// ---------------------------------------------------------- lock-order

TEST(VlintGraph, InconsistentAcquisitionOrderAcrossTusIsACycle)
{
    Tree t;
    t.add("src/core/tu1.cpp",
          "namespace app {\n"
          "void Svc::f()\n"
          "{\n"
          "    std::lock_guard<std::mutex> a(mA);\n"
          "    std::lock_guard<std::mutex> b(mB);\n"
          "}\n"
          "} // namespace app\n");
    t.add("src/core/tu2.cpp",
          "namespace app {\n"
          "void Svc::g()\n"
          "{\n"
          "    std::lock_guard<std::mutex> b(mB);\n"
          "    std::lock_guard<std::mutex> a(mA);\n"
          "}\n"
          "} // namespace app\n");
    const CallGraph g = t.link();
    EXPECT_EQ(g.lockEdges.size(), 2u);
    const auto findings = vlint::runGraphRules(g, 3);
    const Finding *f = firstOf(findings, "lock-order");
    ASSERT_NE(f, nullptr);
    EXPECT_NE(f->message.find("mA"), std::string::npos);
    EXPECT_NE(f->message.find("mB"), std::string::npos);
}

TEST(VlintGraph, ConsistentOrderAcrossTusIsFine)
{
    Tree t;
    t.add("src/core/tu1.cpp",
          "namespace app {\n"
          "void Svc::f()\n"
          "{\n"
          "    std::lock_guard<std::mutex> a(mA);\n"
          "    std::lock_guard<std::mutex> b(mB);\n"
          "}\n"
          "} // namespace app\n");
    t.add("src/core/tu2.cpp",
          "namespace app {\n"
          "void Svc::g()\n"
          "{\n"
          "    std::lock_guard<std::mutex> a(mA);\n"
          "    std::lock_guard<std::mutex> b(mB);\n"
          "}\n"
          "} // namespace app\n");
    const CallGraph g = t.link();
    EXPECT_FALSE(hasRule(vlint::runGraphRules(g, 3), "lock-order"));
}

TEST(VlintGraph, LockHeldAcrossACallChainOrdersTransitively)
{
    // f holds mA and calls helper, which takes mB: that is an
    // mA -> mB edge even though no block in the tree nests the two
    // guards. (helper is a method of the same class so both locks
    // qualify onto Svc — name-based lock identity is per-class.)
    Tree t;
    t.add("src/core/tu1.cpp",
          "namespace app {\n"
          "void Svc::f()\n"
          "{\n"
          "    std::lock_guard<std::mutex> a(mA);\n"
          "    helper();\n"
          "}\n"
          "void Svc::helper()\n"
          "{\n"
          "    std::lock_guard<std::mutex> b(mB);\n"
          "}\n"
          "void Svc::g()\n"
          "{\n"
          "    std::lock_guard<std::mutex> b(mB);\n"
          "    std::lock_guard<std::mutex> a(mA);\n"
          "}\n"
          "} // namespace app\n");
    const CallGraph g = t.link();
    EXPECT_TRUE(hasRule(vlint::runGraphRules(g, 3), "lock-order"));
}

// ----------------------------------------------------------- layer-dag

TEST(VlintGraph, IncludeBackEdgeAgainstTheLayeringIsAnError)
{
    Tree t;
    t.add("src/util/helper.hpp",
          "#pragma once\n"
          "#include \"core/campaign.hpp\"\n");
    t.add("src/core/campaign.hpp", "#pragma once\n");
    const CallGraph g = t.link();
    ASSERT_EQ(g.includes.size(), 1u);
    const auto findings = vlint::runGraphRules(g, 3);
    const Finding *f = firstOf(findings, "layer-dag");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->file, "src/util/helper.hpp");
    EXPECT_EQ(f->line, 2);
    EXPECT_NE(f->message.find("src/core/campaign.hpp"),
              std::string::npos);
}

TEST(VlintGraph, DownwardIncludesFollowTheLayering)
{
    Tree t;
    t.add("src/core/campaign.hpp",
          "#pragma once\n"
          "#include \"util/helper.hpp\"\n"
          "#include \"pdn/pdn_sim.hpp\"\n");
    t.add("src/util/helper.hpp", "#pragma once\n");
    t.add("src/pdn/pdn_sim.hpp", "#pragma once\n");
    const CallGraph g = t.link();
    EXPECT_EQ(g.includes.size(), 2u);
    EXPECT_FALSE(hasRule(vlint::runGraphRules(g, 3), "layer-dag"));
}

TEST(VlintGraph, LayerRanksMatchTheDocumentedOrder)
{
    EXPECT_LT(vlint::layerRank("src/util/x.hpp"),
              vlint::layerRank("src/linsys/x.hpp"));
    EXPECT_LT(vlint::layerRank("src/linsys/x.hpp"),
              vlint::layerRank("src/pdn/x.hpp"));
    EXPECT_LT(vlint::layerRank("src/pdn/x.hpp"),
              vlint::layerRank("src/obs/x.hpp"));
    EXPECT_LT(vlint::layerRank("src/obs/x.hpp"),
              vlint::layerRank("src/core/x.hpp"));
    EXPECT_LT(vlint::layerRank("src/core/x.hpp"),
              vlint::layerRank("src/svc/x.hpp"));
    EXPECT_LT(vlint::layerRank("src/svc/x.hpp"),
              vlint::layerRank("tools/vlint/x.hpp"));
    EXPECT_EQ(vlint::layerRank("src/pdn/x.hpp"),
              vlint::layerRank("src/power/x.hpp"));
}

// ---------------------------------------------------------- graph JSON

TEST(VlintGraph, GraphJsonCarriesEverySection)
{
    Tree t;
    t.add("src/core/eng.cpp",
          "struct CampaignEngine {\n"
          "    void run()\n"
          "    {\n"
          "        helper();\n"
          "    }\n"
          "};\n"
          "void helper() { }\n");
    const std::string json = vlint::graphJson(t.link());
    for (const char *key :
         {"\"functions\"", "\"includes\"", "\"lock_edges\"",
          "\"roots\"", "\"stats\""})
        EXPECT_NE(json.find(key), std::string::npos) << key;
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_NE(json.find("CampaignEngine::run"), std::string::npos);
}
