/**
 * @file
 * Tests for src/workloads: stressmark structure and calibration, SPEC
 * proxy generation, and the canonical kernels.
 */

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "cpu/core.hpp"
#include "power/wattch.hpp"
#include "workloads/kernels.hpp"
#include "workloads/spec_proxy.hpp"
#include "workloads/stressmark.hpp"

namespace {

using namespace vguard;
using namespace vguard::workloads;

// Mean current of the steady (warm) half of a bounded run.
double
steadyMeanCurrent(const isa::Program &prog, uint64_t cycles = 30000)
{
    cpu::CpuConfig cfg;
    cpu::OoOCore core(cfg, prog);
    power::WattchModel pm(power::PowerConfig{}, cfg);
    double sum = 0.0;
    uint64_t n = 0;
    while (core.now() < cycles && !core.halted()) {
        const double amps = pm.current(core.cycle());
        if (core.now() > cycles / 2) {
            sum += amps;
            ++n;
        }
    }
    return n ? sum / n : 0.0;
}

TEST(Stressmark, BuildsRunnableLoop)
{
    StressmarkParams p;
    p.iterations = 50;
    cpu::OoOCore core(cpu::CpuConfig{}, StressmarkBuilder::build(p));
    while (!core.halted() && core.now() < 100000)
        core.cycle();
    EXPECT_TRUE(core.halted());
    EXPECT_GE(core.stats().branches, 50u);
}

TEST(Stressmark, RejectsZeroDivChain)
{
    StressmarkParams p;
    p.divChain = 0;
    EXPECT_EXIT(StressmarkBuilder::build(p),
                ::testing::ExitedWithCode(1), "divChain");
}

TEST(Stressmark, PeriodGrowsWithDivChain)
{
    cpu::CpuConfig cfg;
    StressmarkParams small;
    small.divChain = 1;
    small.burstAlu = 80;
    StressmarkParams big = small;
    big.divChain = 4;
    const double ps = StressmarkBuilder::measurePeriod(small, cfg);
    const double pb = StressmarkBuilder::measurePeriod(big, cfg);
    EXPECT_GT(pb, ps + 2.0 * cfg.fpDivLat);
}

TEST(Stressmark, PeriodGrowsWithBurst)
{
    cpu::CpuConfig cfg;
    StressmarkParams small;
    small.burstAlu = 60;
    StressmarkParams big = small;
    big.burstAlu = 240;
    EXPECT_GT(StressmarkBuilder::measurePeriod(big, cfg),
              StressmarkBuilder::measurePeriod(small, cfg) + 10.0);
}

TEST(Stressmark, CalibrationHitsTargetPeriod)
{
    cpu::CpuConfig cfg;
    const auto cal = StressmarkBuilder::calibrate(60, cfg);
    EXPECT_NEAR(cal.measuredPeriodCycles, 60.0, 5.0);
    // The phases must differ substantially in current.
    EXPECT_GT(cal.highPhaseCurrentA, 1.7 * cal.lowPhaseCurrentA);
}

TEST(Stressmark, PhaseSeparationSurvivesOoO)
{
    // The gated burst must keep quiet/busy phases distinct even with a
    // 256-entry window: the per-cycle current trace should spend real
    // time both below and above its mean.
    StressmarkParams p;
    p.divChain = 2;
    p.burstStores = 16;
    p.burstAlu = 200;
    cpu::CpuConfig cfg;
    cpu::OoOCore core(cfg, StressmarkBuilder::build(p));
    power::WattchModel pm(power::PowerConfig{}, cfg);
    for (int i = 0; i < 30000; ++i)
        core.cycle(); // warm
    unsigned low = 0, high = 0, total = 0;
    for (int i = 0; i < 3000; ++i) {
        const double amps = pm.current(core.cycle());
        low += amps < 18.0;
        high += amps > 30.0;
        ++total;
    }
    EXPECT_GT(low, total / 5u);
    EXPECT_GT(high, total / 5u);
}

TEST(SpecProxy, AllBenchmarksPresent)
{
    const auto &names = specBenchmarkNames();
    EXPECT_EQ(names.size(), 26u); // 12 SPECint + 14 SPECfp
    const std::set<std::string> set(names.begin(), names.end());
    EXPECT_EQ(set.size(), 26u);   // no duplicates
    EXPECT_TRUE(set.count("gzip"));
    EXPECT_TRUE(set.count("ammp"));
    EXPECT_TRUE(set.count("sixtrack"));
}

TEST(SpecProxy, EmergencySetIsSubset)
{
    const auto &all = specBenchmarkNames();
    const std::set<std::string> set(all.begin(), all.end());
    EXPECT_EQ(emergencySetNames().size(), 8u);
    for (const auto &name : emergencySetNames())
        EXPECT_TRUE(set.count(name)) << name;
}

TEST(SpecProxy, UnknownNameFatal)
{
    EXPECT_EXIT(specProfile("quake3"), ::testing::ExitedWithCode(1),
                "unknown");
}

TEST(SpecProxy, ProfilesMatchPaperCharacterisation)
{
    // ammp: poor cache, many stalls, low IPC, stable voltage.
    const auto &ammp = specProfile("ammp");
    EXPECT_GT(ammp.workingSetKB, 8192.0);
    EXPECT_GT(ammp.stallLoads, 0u);
    EXPECT_LT(ammp.phaseContrast, 0.3);
    // galgel: widest variation.
    const auto &galgel = specProfile("galgel");
    EXPECT_GT(galgel.phaseContrast, 0.7);
}

TEST(SpecProxy, GeneratedProgramsRun)
{
    for (const char *name : {"gzip", "ammp", "galgel", "gcc", "eon"}) {
        cpu::CpuConfig cfg;
        cpu::OoOCore core(cfg, buildSpecProxy(name));
        for (int i = 0; i < 20000; ++i)
            core.cycle();
        EXPECT_FALSE(core.halted()) << name;   // effectively infinite
        EXPECT_GT(core.stats().committed, 500u) << name;
    }
}

TEST(SpecProxy, DeterministicGeneration)
{
    const auto a = buildSpecProxy("vpr");
    const auto b = buildSpecProxy("vpr");
    ASSERT_EQ(a.size(), b.size());
    for (uint32_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.at(i).op, b.at(i).op) << i;
        EXPECT_EQ(a.at(i).rd, b.at(i).rd) << i;
    }
}

TEST(SpecProxy, SeedsChangeInstructionMix)
{
    const auto &p = specProfile("gzip");
    const auto a = buildSpecProxy(p, 1);
    const auto b = buildSpecProxy(p, 2);
    bool differs = a.size() != b.size();
    for (uint32_t i = 0; !differs && i < a.size(); ++i)
        differs = a.at(i).op != b.at(i).op;
    EXPECT_TRUE(differs);
}

TEST(SpecProxy, MemoryBoundHasLowIpc)
{
    cpu::CpuConfig cfg;
    cpu::OoOCore mem(cfg, buildSpecProxy("ammp"));
    cpu::OoOCore cpu(cfg, buildSpecProxy("crafty"));
    for (int i = 0; i < 60000; ++i) {
        mem.cycle();
        cpu.cycle();
    }
    EXPECT_LT(mem.stats().ipc(), 0.4 * cpu.stats().ipc());
}

TEST(SpecProxy, MispredictRatesFollowProfile)
{
    cpu::CpuConfig cfg;
    cpu::OoOCore branchy(cfg, buildSpecProxy("gcc"));
    cpu::OoOCore straight(cfg, buildSpecProxy("swim"));
    for (int i = 0; i < 60000; ++i) {
        branchy.cycle();
        straight.cycle();
    }
    const double rBranchy = branchy.bpredStats().condMispredictRate();
    const double rStraight = straight.bpredStats().condMispredictRate();
    EXPECT_GT(rBranchy, rStraight);
    EXPECT_GT(rBranchy, 0.01);
}

TEST(SpecProxy, CallHeavyUsesRas)
{
    cpu::CpuConfig cfg;
    cpu::OoOCore core(cfg, buildSpecProxy("eon"));
    for (int i = 0; i < 30000; ++i)
        core.cycle();
    EXPECT_GT(core.stats().branches, 100u);
    EXPECT_LT(core.bpredStats().rasMispredicts, 5u); // RAS works
}

TEST(Kernels, CurrentOrdering)
{
    // busy > stream > stall in steady current.
    const double busy = steadyMeanCurrent(busyKernel());
    const double stall = steadyMeanCurrent(stallKernel());
    const double virus = steadyMeanCurrent(powerVirus());
    EXPECT_GT(busy, 1.5 * stall);
    EXPECT_GE(virus, busy * 0.95);
}

TEST(Kernels, VirusApproachesModelMax)
{
    cpu::CpuConfig cfg;
    power::WattchModel pm(power::PowerConfig{}, cfg);
    const double virus = steadyMeanCurrent(powerVirus());
    EXPECT_GT(virus, 0.45 * pm.maxCurrent());
    EXPECT_LT(virus, pm.maxCurrent());
}

TEST(Kernels, StreamTouchesItsFootprint)
{
    cpu::CpuConfig cfg;
    cpu::OoOCore core(cfg, streamKernel(256.0));
    for (int i = 0; i < 60000; ++i)
        core.cycle();
    // 256 KB footprint streams through the 64 KB L1: sustained misses.
    EXPECT_GT(core.mem().dl1().stats().misses, 200u);
}

TEST(Kernels, PhasedKernelOscillates)
{
    cpu::CpuConfig cfg;
    cpu::OoOCore core(cfg, phasedKernel(40));
    power::WattchModel pm(power::PowerConfig{}, cfg);
    for (int i = 0; i < 30000; ++i)
        core.cycle();
    double lo = 1e9, hi = 0.0;
    for (int i = 0; i < 2000; ++i) {
        const double amps = pm.current(core.cycle());
        lo = std::min(lo, amps);
        hi = std::max(hi, amps);
    }
    EXPECT_GT(hi, 1.6 * lo);
}

TEST(Kernels, PhasedKernelRejectsTinyPhase)
{
    EXPECT_EXIT(phasedKernel(2), ::testing::ExitedWithCode(1), "");
}

} // namespace
